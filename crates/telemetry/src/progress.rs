//! The one progress emitter behind `--progress human|json`.
//!
//! Every long-running loop (sweep points, grid shards, fault epochs,
//! validation sizes) reports through a [`Progress`] handle. In
//! [`ProgressMode::Human`] it reproduces the established stderr lines
//! byte-for-byte (`task: done/total unit, elapsed Xs, eta Ys`, optionally
//! with a percentage); in [`ProgressMode::Json`] it emits one JSONL
//! heartbeat per tick carrying work-done / work-total / elapsed / ETA,
//! ready for a supervising process to stream.
//!
//! The handle is share-safe (`&self` everywhere, atomic throttle), so a
//! multi-threaded producer like the grid runner can tick it from every
//! shard and at most one line per throttle window wins.

use serde::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Output format of a [`Progress`] emitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProgressMode {
    /// The established human-readable stderr lines.
    #[default]
    Human,
    /// One JSON object per line (JSONL heartbeats).
    Json,
}

impl ProgressMode {
    /// Parses `"human"` / `"json"`.
    pub fn parse(s: &str) -> Option<ProgressMode> {
        match s {
            "human" => Some(ProgressMode::Human),
            "json" => Some(ProgressMode::Json),
            _ => None,
        }
    }
}

/// A progress/heartbeat stream for one task with a known total.
pub struct Progress {
    task: String,
    unit: String,
    total: usize,
    show_percent: bool,
    throttle_ms: u64,
    mode: ProgressMode,
    start: Instant,
    last_print_ms: AtomicU64,
}

impl Progress {
    /// A new emitter for `task` with `total` units of work. Defaults:
    /// unit `points`, no percentage, no throttle.
    pub fn new(task: &str, total: usize, mode: ProgressMode) -> Progress {
        Progress {
            task: task.to_string(),
            unit: "points".to_string(),
            total,
            show_percent: false,
            throttle_ms: 0,
            mode,
            start: Instant::now(),
            last_print_ms: AtomicU64::new(0),
        }
    }

    /// Sets the unit noun in human lines (`points`, `epochs`, `sizes`).
    pub fn unit(mut self, unit: &str) -> Progress {
        self.unit = unit.to_string();
        self
    }

    /// Also prints a percentage in human lines (the grid runner format).
    pub fn percent(mut self, yes: bool) -> Progress {
        self.show_percent = yes;
        self
    }

    /// Rate-limits ticks to one line per `ms` (the final tick, where
    /// `done == total`, always prints). Races between threads resolve by
    /// compare-exchange: exactly one wins the window.
    pub fn throttle_ms(mut self, ms: u64) -> Progress {
        self.throttle_ms = ms;
        self
    }

    /// Reports `done` units complete, emitting one line to stderr
    /// (subject to the throttle).
    pub fn tick(&self, done: usize) {
        let elapsed = self.start.elapsed();
        if self.throttle_ms > 0 {
            let now_ms = elapsed.as_millis() as u64;
            let prev = self.last_print_ms.load(Ordering::Relaxed);
            if done < self.total && now_ms.saturating_sub(prev) < self.throttle_ms {
                return;
            }
            if self
                .last_print_ms
                .compare_exchange(prev, now_ms, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                return;
            }
        }
        eprintln!("{}", self.line(done, elapsed.as_secs_f64()));
    }

    /// Emits a free-form status line tied to this task (human: the text
    /// verbatim; json: a `"kind": "message"` record).
    pub fn message(&self, text: &str) {
        match self.mode {
            ProgressMode::Human => eprintln!("{text}"),
            ProgressMode::Json => {
                let record = Value::Map(vec![
                    ("kind".to_string(), Value::Str("message".to_string())),
                    ("task".to_string(), Value::Str(self.task.clone())),
                    ("text".to_string(), Value::Str(text.to_string())),
                ]);
                eprintln!("{}", serde_json::to_string(&record).expect("value tree"));
            }
        }
    }

    /// The formatted line for `done` units after `elapsed` seconds —
    /// split out so tests can pin the exact bytes.
    fn line(&self, done: usize, elapsed: f64) -> String {
        let eta = if done == 0 {
            f64::INFINITY
        } else {
            elapsed / done as f64 * (self.total - done.min(self.total)) as f64
        };
        match self.mode {
            ProgressMode::Human => {
                let Progress {
                    task, unit, total, ..
                } = self;
                if self.show_percent {
                    let pct = 100.0 * done as f64 / (*total).max(1) as f64;
                    format!(
                        "{task}: {done}/{total} {unit} ({pct:.1} %), elapsed {elapsed:.1}s, \
                         eta {eta:.1}s"
                    )
                } else {
                    format!("{task}: {done}/{total} {unit}, elapsed {elapsed:.1}s, eta {eta:.1}s")
                }
            }
            ProgressMode::Json => {
                let record = Value::Map(vec![
                    ("kind".to_string(), Value::Str("progress".to_string())),
                    ("task".to_string(), Value::Str(self.task.clone())),
                    ("done".to_string(), Value::U64(done as u64)),
                    ("total".to_string(), Value::U64(self.total as u64)),
                    ("elapsed_seconds".to_string(), Value::F64(elapsed)),
                    (
                        "eta_seconds".to_string(),
                        Value::F64(if eta.is_finite() { eta } else { 0.0 }),
                    ),
                ]);
                serde_json::to_string(&record).expect("value tree")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses() {
        assert_eq!(ProgressMode::parse("human"), Some(ProgressMode::Human));
        assert_eq!(ProgressMode::parse("json"), Some(ProgressMode::Json));
        assert_eq!(ProgressMode::parse("csv"), None);
    }

    #[test]
    fn human_line_matches_the_sweep_format() {
        let p = Progress::new("sweep[flit]", 8, ProgressMode::Human);
        assert_eq!(
            p.line(1, 0.4),
            "sweep[flit]: 1/8 points, elapsed 0.4s, eta 2.8s"
        );
    }

    #[test]
    fn human_line_with_percent_matches_the_grid_format() {
        let p = Progress::new("grid[flit]", 56, ProgressMode::Human).percent(true);
        assert_eq!(
            p.line(3, 1.2),
            "grid[flit]: 3/56 points (5.4 %), elapsed 1.2s, eta 21.2s"
        );
    }

    #[test]
    fn json_line_is_a_heartbeat_record() {
        let p = Progress::new("sweep[flit]", 8, ProgressMode::Json);
        let line = p.line(2, 1.0);
        assert_eq!(
            line,
            "{\"kind\":\"progress\",\"task\":\"sweep[flit]\",\"done\":2,\"total\":8,\
             \"elapsed_seconds\":1.0,\"eta_seconds\":3.0}"
        );
    }

    #[test]
    fn zero_done_never_emits_infinite_eta_in_json() {
        let p = Progress::new("t", 4, ProgressMode::Json);
        assert!(p.line(0, 1.0).contains("\"eta_seconds\":0.0"));
    }
}
