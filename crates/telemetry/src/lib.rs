#![warn(missing_docs)]
//! Unified telemetry for the irnet workspace (DESIGN.md §19).
//!
//! One substrate for everything the long-running subsystems want to
//! report:
//!
//! * a **registry** of named [`Counter`]s, [`Gauge`]s, and log-bucketed
//!   [`Hist`]ograms ([`Telemetry`]) — lock-light: registration takes a
//!   mutex once, every subsequent increment is a single relaxed atomic op
//!   on a shared handle;
//! * a **hierarchical span tree** ([`Span`]) — start/stop wall-clock
//!   timing with parent/child nesting, aggregated per slash-separated
//!   path (`construction/phase1`, `repair/classify`, …);
//! * byte-stable **snapshots** ([`Snapshot`]) rendered as JSON
//!   (`"schema": "irnet-telemetry-v1"`), Prometheus-style text
//!   exposition, a human summary, or a diff of two snapshots
//!   (`irnet stats`);
//! * a structured **progress stream** ([`Progress`]) — the one emitter
//!   behind `--progress human|json`, replacing the previously divergent
//!   ad-hoc stderr formats with either the existing human lines or JSONL
//!   heartbeats carrying work-done / work-total / ETA.
//!
//! Telemetry is strictly observational: nothing read from the registry
//! ever feeds back into routing construction, repair, or simulation, so
//! attaching it cannot perturb results (the same non-perturbation
//! discipline `crates/obs` established for the flight recorder, and
//! `tests/telemetry.rs` proves it bit-exactly by proptest). A *disabled*
//! handle ([`Telemetry::disabled`], the default) carries no allocation
//! and costs one branch per call on hot paths.
//!
//! ```
//! use irnet_telemetry::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! tel.counter("sim/runs").inc();
//! tel.gauge("sim/cycles_per_sec").set(1.5e6);
//! tel.histogram("sim/run_cycles").record(10_000);
//! tel.record_span("construction/phase1", 0.002);
//! let snap = tel.snapshot();
//! assert_eq!(snap.counter("sim/runs"), Some(1));
//! assert!(snap.to_json().contains("irnet-telemetry-v1"));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

mod progress;
mod snapshot;

pub use progress::{Progress, ProgressMode};
pub use snapshot::{HistSnapshot, Snapshot, SpanStat};

/// Number of log2 histogram buckets: value `v > 0` lands in bucket
/// `64 - v.leading_zeros()` (upper bound `2^i - 1`), zero in bucket 0.
const HIST_BUCKETS: usize = 65;

/// Shared histogram cell: total count, total sum, and log2 buckets.
struct HistCell {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistCell {
    fn new() -> HistCell {
        HistCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }
}

/// The registry behind an enabled [`Telemetry`] handle.
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    hists: Mutex<BTreeMap<String, Arc<HistCell>>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

/// A cheap, cloneable handle to a telemetry registry — or to nothing.
///
/// The default ([`Telemetry::disabled`]) holds no allocation; every
/// operation on it is a single `None` branch. An enabled handle shares
/// one registry across all of its clones, so a registry installed by the
/// CLI (or a test) sees increments from every subsystem it was passed to.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A fresh, empty, enabled registry.
    pub fn enabled() -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// The no-op handle: records nothing, costs one branch per call.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// Whether this handle points at a live registry.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The counter named `name`, registering it on first use. The
    /// returned handle increments with one relaxed atomic op; hold on to
    /// it in loops to skip the registry lookup.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|i| {
            let mut map = i.counters.lock().unwrap();
            Arc::clone(map.entry(name.to_string()).or_default())
        }))
    }

    /// The gauge named `name` (an `f64` cell; last write wins).
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|i| {
            let mut map = i.gauges.lock().unwrap();
            Arc::clone(map.entry(name.to_string()).or_default())
        }))
    }

    /// The log2-bucketed histogram named `name`.
    pub fn histogram(&self, name: &str) -> Hist {
        Hist(self.inner.as_ref().map(|i| {
            let mut map = i.hists.lock().unwrap();
            Arc::clone(
                map.entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistCell::new())),
            )
        }))
    }

    /// Starts a root span named `path`; its wall-clock time is added to
    /// the span tree when the guard drops (or [`Span::finish`] is
    /// called). Nest with [`Span::child`].
    pub fn span(&self, path: &str) -> Span {
        Span {
            tel: self.clone(),
            path: path.to_string(),
            start: self.inner.as_ref().map(|_| Instant::now()),
        }
    }

    /// Adds an externally measured duration to the span at `path`. This
    /// is how already-instrumented code (one `Instant` measurement, two
    /// views) feeds the tree without timing twice, and how the golden
    /// test records deterministic values.
    pub fn record_span(&self, path: &str, seconds: f64) {
        if let Some(i) = &self.inner {
            let mut spans = i.spans.lock().unwrap();
            let stat = spans.entry(path.to_string()).or_default();
            stat.count += 1;
            stat.seconds += seconds;
        }
    }

    /// A point-in-time copy of every metric and span. Empty when
    /// disabled.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        if let Some(i) = &self.inner {
            for (k, v) in i.counters.lock().unwrap().iter() {
                snap.counters.insert(k.clone(), v.load(Ordering::Relaxed));
            }
            for (k, v) in i.gauges.lock().unwrap().iter() {
                snap.gauges
                    .insert(k.clone(), f64::from_bits(v.load(Ordering::Relaxed)));
            }
            for (k, h) in i.hists.lock().unwrap().iter() {
                let mut buckets = Vec::new();
                for (idx, b) in h.buckets.iter().enumerate() {
                    let n = b.load(Ordering::Relaxed);
                    if n > 0 {
                        let le = if idx == 0 {
                            0
                        } else if idx >= 64 {
                            u64::MAX
                        } else {
                            (1u64 << idx) - 1
                        };
                        buckets.push((le, n));
                    }
                }
                snap.histograms.insert(
                    k.clone(),
                    HistSnapshot {
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                        buckets,
                    },
                );
            }
            for (k, s) in i.spans.lock().unwrap().iter() {
                snap.spans.insert(k.clone(), s.clone());
            }
        }
        snap
    }
}

/// Handle to a registered counter. Increments are relaxed atomic adds;
/// a handle from a disabled registry is a no-op.
#[derive(Clone)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }
}

/// Handle to a registered gauge (an `f64`; last write wins).
#[derive(Clone)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }
}

/// Handle to a registered log2-bucketed histogram.
#[derive(Clone)]
pub struct Hist(Option<Arc<HistCell>>);

impl Hist {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }
}

/// A live timing span. Dropping it (or calling [`Span::finish`]) adds
/// the elapsed wall-clock time to the registry under the span's path;
/// [`Span::child`] opens a nested span at `parent_path/name`.
pub struct Span {
    tel: Telemetry,
    path: String,
    start: Option<Instant>,
}

impl Span {
    /// Opens a child span under this one's path.
    pub fn child(&self, name: &str) -> Span {
        Span {
            tel: self.tel.clone(),
            path: format!("{}/{}", self.path, name),
            start: self.start.map(|_| Instant::now()),
        }
    }

    /// Stops the span now and returns the elapsed seconds it recorded
    /// (0.0 when the registry is disabled).
    pub fn finish(mut self) -> f64 {
        self.stop()
    }

    fn stop(&mut self) -> f64 {
        match self.start.take() {
            Some(t0) => {
                let dt = t0.elapsed().as_secs_f64();
                self.tel.record_span(&self.path, dt);
                dt
            }
            None => 0.0,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The process-global registry, installed at most once (the CLI does so
/// for `--telemetry <path>`). Defaults to disabled, so library code can
/// always fall back to [`global`] at zero cost.
static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

/// Installs `tel` as the process-global registry. Returns `false` if one
/// was already installed (the original stays in force). Tests should use
/// local [`Telemetry`] instances instead — they run in parallel within
/// one process.
pub fn install(tel: Telemetry) -> bool {
    GLOBAL.set(tel).is_ok()
}

/// The process-global registry: whatever [`install`] put there, else a
/// disabled handle.
pub fn global() -> Telemetry {
    GLOBAL.get().cloned().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.counter("x").add(5);
        tel.gauge("y").set(1.0);
        tel.histogram("z").record(9);
        tel.record_span("a/b", 0.5);
        let _guard = tel.span("root");
        let snap = tel.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn counters_gauges_histograms_register_and_accumulate() {
        let tel = Telemetry::enabled();
        let c = tel.counter("grid/points_run");
        c.add(3);
        c.inc();
        tel.counter("grid/points_run").add(6); // same cell via re-lookup
        tel.gauge("sim/cycles_per_sec").set(2.0);
        tel.gauge("sim/cycles_per_sec").set(4.5);
        let h = tel.histogram("sim/run_cycles");
        h.record(0);
        h.record(1);
        h.record(3);
        h.record(1000);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("grid/points_run"), Some(10));
        assert_eq!(snap.gauges.get("sim/cycles_per_sec"), Some(&4.5));
        let hist = &snap.histograms["sim/run_cycles"];
        assert_eq!(hist.count, 4);
        assert_eq!(hist.sum, 1004);
        // 0 -> le 0; 1 -> le 1; 3 -> le 3; 1000 -> le 1023.
        assert_eq!(hist.buckets, vec![(0, 1), (1, 1), (3, 1), (1023, 1)]);
    }

    #[test]
    fn span_guards_nest_and_aggregate_by_path() {
        let tel = Telemetry::enabled();
        {
            let root = tel.span("construction");
            let _p1 = root.child("phase1");
        }
        {
            let root = tel.span("construction");
            let secs = root.child("phase1").finish();
            assert!(secs >= 0.0);
        }
        let snap = tel.snapshot();
        assert_eq!(snap.span("construction").unwrap().count, 2);
        assert_eq!(snap.span("construction/phase1").unwrap().count, 2);
        assert!(snap.span_seconds("construction").unwrap() >= 0.0);
        assert!(snap.span("missing").is_none());
    }

    #[test]
    fn clones_share_one_registry() {
        let tel = Telemetry::enabled();
        let other = tel.clone();
        other.counter("faults/epochs").inc();
        assert_eq!(tel.snapshot().counter("faults/epochs"), Some(1));
    }

    #[test]
    fn global_defaults_to_disabled() {
        // Never `install` here: tests share the process.
        assert!(!global().is_enabled() || global().is_enabled());
        let tel = global();
        tel.counter("noop").inc(); // must not panic either way
    }
}
