//! Stage 3 support — representative neighborhood extraction.
//!
//! To measure a cluster's per-hop delay empirically, the flit engine runs
//! on a small induced subgraph around the representative channel instead
//! of the whole fabric. The ball is grown by breadth-first search from the
//! channel's two endpoint switches (neighbors visited in ascending id
//! order, so the extraction is deterministic), truncated at a radius and a
//! node cap, and the induced subgraph keeps every link between selected
//! switches — BFS growth guarantees connectivity, which `Topology::new`
//! requires.

use irnet_topology::{ChannelId, NodeId, Topology, TopologyError};
use std::collections::VecDeque;

/// An induced sub-fabric around one channel.
#[derive(Debug)]
pub struct Neighborhood {
    /// The extracted sub-topology.
    pub topo: Topology,
    /// `nodes[new_id] = old_id`, ascending (the id compaction map).
    pub nodes: Vec<NodeId>,
    /// The representative channel, re-expressed in the sub-topology's
    /// channel space.
    pub center: ChannelId,
}

/// Extracts the `radius`-hop ball around channel `center` of `topo`,
/// capped at `max_nodes` switches (the cap truncates the BFS frontier but
/// never disconnects the ball).
///
/// # Errors
///
/// Propagates [`TopologyError`] from sub-topology validation; with a
/// connected input this cannot fail.
pub fn extract(
    topo: &Topology,
    center: ChannelId,
    radius: u32,
    max_nodes: usize,
) -> Result<Neighborhood, TopologyError> {
    let link = center / 2;
    let (a, b) = topo.link(link);
    let max_nodes = max_nodes.max(2);

    let mut depth = vec![u32::MAX; topo.num_nodes() as usize];
    let mut order: Vec<NodeId> = Vec::new();
    let mut queue = VecDeque::new();
    for seed in [a.min(b), a.max(b)] {
        depth[seed as usize] = 0;
        order.push(seed);
        queue.push_back(seed);
    }
    while let Some(v) = queue.pop_front() {
        if order.len() >= max_nodes {
            break;
        }
        let d = depth[v as usize];
        if d >= radius {
            continue;
        }
        for &(w, _) in topo.neighbors(v) {
            if depth[w as usize] == u32::MAX {
                depth[w as usize] = d + 1;
                order.push(w);
                queue.push_back(w);
                if order.len() >= max_nodes {
                    break;
                }
            }
        }
    }

    // Compact ids in ascending old-id order.
    let mut nodes = order;
    nodes.sort_unstable();
    let mut new_id = vec![u32::MAX; topo.num_nodes() as usize];
    for (i, &old) in nodes.iter().enumerate() {
        new_id[old as usize] = i as u32;
    }

    // Induced links, in original link order; remember where the center's
    // link lands.
    let mut links: Vec<(NodeId, NodeId)> = Vec::new();
    let mut center_link_new = u32::MAX;
    for (l, &(x, y)) in topo.links().iter().enumerate() {
        let (nx, ny) = (new_id[x as usize], new_id[y as usize]);
        if nx != u32::MAX && ny != u32::MAX {
            if l as u32 == link {
                center_link_new = links.len() as u32;
            }
            links.push((nx.min(ny), nx.max(ny)));
        }
    }
    debug_assert_ne!(center_link_new, u32::MAX);

    // Channel 2l runs small-endpoint -> large-endpoint. Preserve the
    // center channel's orientation through the id remap.
    let old_start = if center.is_multiple_of(2) {
        a.min(b)
    } else {
        a.max(b)
    };
    let new_start = new_id[old_start as usize];
    let (la, lb) = links[center_link_new as usize];
    let center_new = if new_start == la.min(lb) {
        2 * center_link_new
    } else {
        2 * center_link_new + 1
    };

    let sub = Topology::new(nodes.len() as u32, topo.ports(), links)?;
    Ok(Neighborhood {
        topo: sub,
        nodes,
        center: center_new,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_topology::gen;

    #[test]
    fn ball_contains_center_and_respects_cap() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(64, 4), 11).unwrap();
        for c in [0u32, 7, 33] {
            let nb = extract(&topo, c, 2, 24).unwrap();
            assert!(nb.topo.num_nodes() <= 24);
            assert!(nb.topo.num_nodes() >= 2);
            // The center channel exists and its endpoints map back to the
            // original link's endpoints.
            let (a, b) = topo.link(c / 2);
            let sub_link = nb.center / 2;
            let (sa, sb) = nb.topo.link(sub_link);
            let mapped = [nb.nodes[sa as usize], nb.nodes[sb as usize]];
            assert!(mapped.contains(&a) && mapped.contains(&b));
        }
    }

    #[test]
    fn orientation_is_preserved() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(48, 4), 3).unwrap();
        for link in [0u32, 5, 20] {
            let (a, b) = topo.link(link);
            // Channel 2*link starts at min(a, b).
            let nb = extract(&topo, 2 * link, 2, 32).unwrap();
            let (sa, sb) = nb.topo.link(nb.center / 2);
            let start_new = if nb.center.is_multiple_of(2) {
                sa.min(sb)
            } else {
                sa.max(sb)
            };
            assert_eq!(nb.nodes[start_new as usize], a.min(b));
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(96, 4), 5).unwrap();
        let x = extract(&topo, 13, 2, 48).unwrap();
        let y = extract(&topo, 13, 2, 48).unwrap();
        assert_eq!(x.nodes, y.nodes);
        assert_eq!(x.center, y.center);
        assert_eq!(x.topo.links(), y.topo.links());
    }
}
