//! Stages 3 & 4 — representative simulation and generalization.
//!
//! For every channel cluster the active-set flit engine runs once, on a
//! small neighborhood extracted around the cluster's representative
//! channel, driven so the representative carries the cluster's offered
//! load. The run's latency histogram becomes a per-hop delay [`EDist`];
//! sampled deterministic routes are then convolved hop-by-hop and mixed
//! into a network-wide latency distribution, while the bottleneck
//! cluster's measured channel capacity turns the analytic unit loads into
//! a saturation-throughput prediction.
//!
//! Determinism: destinations, sampled routes, cluster order, and every
//! representative-sim seed derive only from the caller's seed, the fabric,
//! and totally ordered [`Signature`]s — never from hash iteration order or
//! the clock — so a fixed seed reproduces the prediction bit-for-bit.

use crate::cluster::{cluster_channels, Signature, IDLE_BUCKET};
use crate::decompose::{Decomposer, Decomposition};
use crate::edist::EDist;
use crate::neighborhood::extract;
use irnet_core::DownUp;
use irnet_sim::{SimConfig, Simulator};
use irnet_telemetry::Telemetry;
use irnet_topology::{ChannelId, CommGraph, CoordinatedTree, NodeId, Topology};
use irnet_turns::TurnTable;
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// Tuning knobs for the flow-level backend. The defaults are what
/// `flow_validate` calibrates against the exact engine.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Decomposition destination cap (0 = walk every destination). Large
    /// fabrics use a deterministic stride sample of this size.
    pub max_dests: usize,
    /// Neighborhood BFS radius around a representative channel.
    pub radius: u32,
    /// Neighborhood node cap.
    pub max_neighborhood: usize,
    /// Number of deterministic source/destination pairs whose routes are
    /// convolved for the latency prediction.
    pub route_sample: usize,
    /// BFS radius of the (single) saturation-probe neighborhood — larger
    /// than the per-cluster radius because capacity extrapolates from it.
    pub sat_radius: u32,
    /// Node cap of the saturation-probe neighborhood.
    pub sat_neighborhood: usize,
    /// Warmup cycles per capacity-probe sim — longer than the per-cluster
    /// warmup so queues reach steady state before throughput is measured.
    pub sat_warmup: u32,
    /// Measured cycles per capacity-probe sim — long enough for the
    /// accepted-traffic transient (buffers filling) to wash out.
    pub sat_measure: u32,
    /// Warmup cycles per representative sim.
    pub rep_warmup: u32,
    /// Measured cycles per representative sim.
    pub rep_measure: u32,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            max_dests: 512,
            radius: 2,
            max_neighborhood: 40,
            route_sample: 48,
            sat_radius: 6,
            sat_neighborhood: 144,
            sat_warmup: 1_500,
            sat_measure: 8_000,
            rep_warmup: 400,
            rep_measure: 2500,
        }
    }
}

/// One predicted operating point.
#[derive(Debug, Clone, Serialize)]
pub struct FlowPoint {
    /// Offered load (flits/node/clock).
    pub offered: f64,
    /// Predicted accepted traffic: `min(offered, saturation)`.
    pub accepted: f64,
    /// Predicted mean packet latency (cycles).
    pub mean_latency: f64,
    /// Predicted median packet latency.
    pub median_latency: f64,
    /// Predicted 99th-percentile packet latency.
    pub p99_latency: f64,
    /// Whether the offered load exceeds the predicted saturation point
    /// (latency figures then describe the saturated regime and are
    /// best-effort).
    pub saturated: bool,
}

/// A predicted latency/throughput curve plus the evidence that produced
/// it.
#[derive(Debug, Clone, Serialize)]
pub struct FlowCurve {
    /// One point per requested offered load, in order.
    pub points: Vec<FlowPoint>,
    /// Predicted saturation throughput (flits/node/clock).
    pub sat_throughput: f64,
    /// Cluster count at the highest requested load.
    pub cluster_count: usize,
    /// Representative flit sims actually run (cache hits excluded).
    pub representative_sims: usize,
    /// Wall seconds spent in representative sims.
    pub rep_sim_seconds: f64,
    /// Wall seconds spent in the analytic decomposition.
    pub decompose_seconds: f64,
    /// The most loaded channel.
    pub bottleneck_channel: ChannelId,
    /// Its offered load per unit injection rate.
    pub bottleneck_unit_load: f64,
    /// Destinations the decomposition walked (may be a sample).
    pub dests_sampled: u32,
}

impl FlowCurve {
    /// Maximum predicted accepted traffic over the curve.
    pub fn max_throughput(&self) -> f64 {
        self.points.iter().map(|p| p.accepted).fold(0.0, f64::max)
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic per-signature simulation seed (explicit mixing — not
/// `Hash`, whose output is not stable across releases).
fn sig_seed(seed: u64, sig: Signature) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for v in [
        u64::from(sig.dir_class),
        u64::from(sig.level),
        u64::from(sig.port_class),
        sig.load_bucket as i64 as u64,
    ] {
        h ^= v
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(h << 6)
            .wrapping_add(h >> 2);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A reusable flow-level predictor: [`FlowPredictor::build`] pays the
/// one-time cost (analytic decomposition, saturation probe, route sample),
/// after which [`FlowPredictor::point`] evaluates any operating point from
/// clustering + convolution alone — milliseconds per query once the
/// per-signature hop cache is warm, against seconds per flit run for the
/// exact engine.
pub struct FlowPredictor<'a> {
    topo: &'a Topology,
    tree: &'a CoordinatedTree,
    cg: &'a CommGraph,
    base: &'a SimConfig,
    cfg: FlowConfig,
    seed: u64,
    plen: u32,
    dec: Decomposition,
    sat_throughput: f64,
    routes: Vec<Vec<ChannelId>>,
    /// Per-signature hop delay distributions (filled lazily by queries).
    hop_cache: BTreeMap<Signature, EDist>,
    /// Convolutions keyed by the sorted multiset of contended hop
    /// signatures along a route — routes through statistically identical
    /// hop sequences share one convolution.
    route_cache: BTreeMap<Vec<Signature>, EDist>,
    cluster_count: usize,
    representative_sims: usize,
    rep_sim_seconds: f64,
    decompose_seconds: f64,
    /// Queries answered from the per-signature hop cache instead of a
    /// fresh representative sim.
    rep_sim_cache_hits: usize,
    /// Route convolutions served from / missing the route cache.
    route_cache_hits: usize,
    route_cache_misses: usize,
    /// Telemetry sink ([`Telemetry::disabled`] unless built through
    /// [`FlowPredictor::build_instrumented`]). Strictly observational.
    tel: Telemetry,
}

impl<'a> FlowPredictor<'a> {
    /// Builds the predictor: Stage 1 decomposition, the saturation probe,
    /// and the deterministic route sample. Works from the Phase-1..3
    /// artifacts only (no [`irnet_turns::RoutingTables`] required), which
    /// is what makes 65k-switch fabrics reachable.
    pub fn build(
        topo: &'a Topology,
        tree: &'a CoordinatedTree,
        cg: &'a CommGraph,
        table: &TurnTable,
        base: &'a SimConfig,
        seed: u64,
        cfg: &FlowConfig,
    ) -> FlowPredictor<'a> {
        Self::build_instrumented(
            topo,
            tree,
            cg,
            table,
            base,
            seed,
            cfg,
            &Telemetry::disabled(),
        )
    }

    /// [`FlowPredictor::build`] with telemetry attached: decomposition
    /// and representative-sim time land in `tel`'s span tree
    /// (`flow/decompose`, `flow/rep_sim`), and the predictor's cache
    /// behavior — per-signature rep-sim hits/misses and route-convolution
    /// cache hits/misses — accumulates in the registry as it serves
    /// queries.
    #[allow(clippy::too_many_arguments)]
    pub fn build_instrumented(
        topo: &'a Topology,
        tree: &'a CoordinatedTree,
        cg: &'a CommGraph,
        table: &TurnTable,
        base: &'a SimConfig,
        seed: u64,
        cfg: &FlowConfig,
        tel: &Telemetry,
    ) -> FlowPredictor<'a> {
        let n = cg.num_nodes();
        let plen = base.packet_len.max(1);

        // Stage 1: analytic per-channel loads.
        let t0 = Instant::now();
        let dx = Decomposer::new(cg, table);
        let dec = dx.decompose(cfg.max_dests);
        let (bneck, w_max) = dec.bottleneck();
        let decompose_seconds = t0.elapsed().as_secs_f64();
        tel.record_span("flow/decompose", decompose_seconds);

        // Saturation: drive the bottleneck channel's neighborhood hard and
        // measure what it actually sustains.
        let t1 = Instant::now();
        let (sat_throughput, probe_sims) = measure_saturation(topo, base, bneck, w_max, seed, cfg);
        let rep_sim_seconds = t1.elapsed().as_secs_f64();
        tel.record_span("flow/rep_sim", rep_sim_seconds);
        tel.counter("flow/rep_sims").add(probe_sims as u64);

        // Deterministic route sample, shared by all rates (routes are
        // load-independent).
        let mut rng = seed ^ 0xD1B5_4A32_D192_ED03;
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        if n > 1 {
            while pairs.len() < cfg.route_sample {
                let s = (splitmix(&mut rng) % u64::from(n)) as NodeId;
                let t = (splitmix(&mut rng) % u64::from(n)) as NodeId;
                if s != t {
                    pairs.push((s, t));
                }
            }
        }
        let mut dest_costs: BTreeMap<NodeId, Vec<u16>> = BTreeMap::new();
        for &(_, t) in &pairs {
            dest_costs.entry(t).or_insert_with(|| dx.costs_for(t));
        }
        let routes: Vec<Vec<ChannelId>> = pairs
            .iter()
            .filter_map(|&(s, t)| dx.route(&dest_costs[&t], s, t))
            .collect();

        FlowPredictor {
            topo,
            tree,
            cg,
            base,
            cfg: cfg.clone(),
            seed,
            plen,
            dec,
            sat_throughput,
            routes,
            hop_cache: BTreeMap::new(),
            route_cache: BTreeMap::new(),
            cluster_count: 0,
            representative_sims: probe_sims,
            rep_sim_seconds,
            decompose_seconds,
            rep_sim_cache_hits: 0,
            route_cache_hits: 0,
            route_cache_misses: 0,
            tel: tel.clone(),
        }
    }

    /// The predicted saturation throughput (flits/node/clock).
    pub fn saturation(&self) -> f64 {
        self.sat_throughput
    }

    /// The analytic decomposition the predictor was built from.
    pub fn decomposition(&self) -> &Decomposition {
        &self.dec
    }

    /// Representative flit sims run so far (probe + per-signature).
    pub fn sims_run(&self) -> usize {
        self.representative_sims
    }

    /// Queries whose channel signature was already covered by a previous
    /// representative sim — the per-signature cache doing its job.
    pub fn rep_sim_cache_hits(&self) -> usize {
        self.rep_sim_cache_hits
    }

    /// Route convolutions served straight from the route cache.
    pub fn route_cache_hits(&self) -> usize {
        self.route_cache_hits
    }

    /// Route convolutions that had to be computed (and were then cached).
    pub fn route_cache_misses(&self) -> usize {
        self.route_cache_misses
    }

    /// Predicts one operating point. The first queries run one
    /// neighborhood flit sim per previously unseen channel signature;
    /// once the signature cache covers the requested load regime, a query
    /// costs only clustering and (cached) convolution.
    pub fn point(&mut self, rate: f64) -> FlowPoint {
        let loads: Vec<f64> = self.dec.unit_load.iter().map(|&w| w * rate).collect();
        let part = cluster_channels(self.cg, self.tree, &loads);
        self.cluster_count = part.len();
        self.tel.counter("flow/points").inc();
        self.tel.gauge("flow/clusters").set(part.len() as f64);
        self.tel
            .histogram("flow/clusters_per_point")
            .record(part.len() as u64);

        // Stage 3: one neighborhood sim per previously unseen signature.
        for cl in &part.clusters {
            if cl.sig.load_bucket == IDLE_BUCKET {
                continue;
            }
            if self.hop_cache.contains_key(&cl.sig) {
                self.rep_sim_cache_hits += 1;
                self.tel.counter("flow/rep_sim_cache_hits").inc();
                continue;
            }
            let t = Instant::now();
            let hop = hop_distribution(
                self.topo,
                self.base,
                cl.representative,
                cl.mean_load,
                sig_seed(self.seed, cl.sig),
                &self.cfg,
                self.plen,
            );
            let dt = t.elapsed().as_secs_f64();
            self.rep_sim_seconds += dt;
            self.representative_sims += 1;
            self.tel.record_span("flow/rep_sim", dt);
            self.tel.counter("flow/rep_sims").inc();
            self.hop_cache.insert(cl.sig, hop);
        }

        // Stage 4: convolve per-hop distributions along sampled routes.
        // Idle hops are exact unit shifts; contended hops convolve once
        // per distinct sorted signature multiset (convolution on the
        // quantile grid is evaluated in sorted order, so the cache is
        // deterministic and order-independent by construction).
        let plen = self.plen;
        let route_dists: Vec<EDist> = self
            .routes
            .iter()
            .map(|route| {
                let mut shift = f64::from(plen - 1);
                let mut key: Vec<Signature> = Vec::with_capacity(route.len());
                for &c in route {
                    let sig = Signature::of(self.cg, self.tree, c, loads[c as usize]);
                    if sig.load_bucket == IDLE_BUCKET || !self.hop_cache.contains_key(&sig) {
                        // Uncontended: exactly one cycle per hop.
                        shift += 1.0;
                    } else {
                        key.push(sig);
                    }
                }
                key.sort_unstable();
                let base = match self.route_cache.get(&key) {
                    Some(d) => {
                        self.route_cache_hits += 1;
                        self.tel.counter("flow/route_cache_hits").inc();
                        d.clone()
                    }
                    None => {
                        let mut acc = EDist::constant(0.0);
                        for sig in &key {
                            acc = acc.convolve(&self.hop_cache[sig]);
                        }
                        self.route_cache_misses += 1;
                        self.tel.counter("flow/route_cache_misses").inc();
                        self.route_cache.insert(key, acc.clone());
                        acc
                    }
                };
                base.affine(1.0, shift)
            })
            .collect();
        let mix: Vec<(f64, &EDist)> = route_dists.iter().map(|d| (1.0, d)).collect();
        let net = EDist::mixture(&mix).unwrap_or_else(|| EDist::constant(f64::from(plen)));

        let saturated = rate >= self.sat_throughput;
        FlowPoint {
            offered: rate,
            accepted: rate.min(self.sat_throughput),
            mean_latency: net.mean(),
            median_latency: net.quantile(0.5),
            p99_latency: net.quantile(0.99),
            saturated,
        }
    }

    /// Predicts the whole ladder and snapshots the evidence into a
    /// [`FlowCurve`].
    pub fn curve(&mut self, rates: &[f64]) -> FlowCurve {
        let points: Vec<FlowPoint> = rates.iter().map(|&r| self.point(r)).collect();
        let (bneck, w_max) = self.dec.bottleneck();
        FlowCurve {
            points,
            sat_throughput: self.sat_throughput,
            cluster_count: self.cluster_count,
            representative_sims: self.representative_sims,
            rep_sim_seconds: self.rep_sim_seconds,
            decompose_seconds: self.decompose_seconds,
            bottleneck_channel: bneck,
            bottleneck_unit_load: w_max,
            dests_sampled: self.dec.dests_sampled,
        }
    }
}

/// Predicts the latency/throughput curve of a fabric at the given offered
/// loads without simulating it whole — builds a [`FlowPredictor`] and
/// queries every ladder point.
#[allow(clippy::too_many_arguments)]
pub fn predict(
    topo: &Topology,
    tree: &CoordinatedTree,
    cg: &CommGraph,
    table: &TurnTable,
    base: &SimConfig,
    rates: &[f64],
    seed: u64,
    cfg: &FlowConfig,
) -> FlowCurve {
    FlowPredictor::build(topo, tree, cg, table, base, seed, cfg).curve(rates)
}

/// Runs one representative neighborhood sim and turns its latency
/// histogram into a per-hop delay distribution (floor 1 cycle/hop).
fn hop_distribution(
    topo: &Topology,
    base: &SimConfig,
    representative: ChannelId,
    target_load: f64,
    seed: u64,
    cfg: &FlowConfig,
    plen: u32,
) -> EDist {
    let Some((stats, hops)) = neighborhood_run(topo, base, representative, target_load, seed, cfg)
    else {
        return EDist::constant(1.0);
    };
    let hops = hops.max(1.0);
    match EDist::from_buckets(stats.latency_hist.buckets()) {
        Some(lat) => lat
            .affine(1.0 / hops, -f64::from(plen - 1) / hops)
            .max_with(1.0),
        None => EDist::constant(1.0),
    }
}

/// Injection drives (fraction of the neighborhood's max) the capacity
/// probe sweeps. Wormhole throughput peaks at saturation and *falls*
/// beyond it, so a single max-drive probe lands in the collapsed regime
/// and underestimates capacity; taking the max over a small drive ladder
/// recovers the peak.
const PROBE_DRIVES: [f64; 4] = [0.35, 0.55, 0.75, 0.95];

/// Estimates the fabric's saturation throughput (flits/node/clock) by
/// driving the bottleneck channel's neighborhood through the saturation
/// ladder.
///
/// Two regimes:
///
/// - The extracted ball covers the **whole fabric** (small fabrics): the
///   probe *is* the fabric, so its peak accepted traffic over the drive
///   ladder is the saturation throughput directly — no model transfer.
/// - The ball is a **truncated neighborhood** (large fabrics): the
///   transferable scalar is the peak *measured* channel utilization the
///   probe sustains — the occupancy a hot channel reaches under this
///   router and flow-control before throughput collapses. The full fabric
///   then saturates at `λ_sat = peak_util / w_max`, where `w_max` is the
///   analytic bottleneck load per unit injection. Measured utilization is
///   used (not analytic sub-fabric loads) because the adaptive router
///   spreads traffic away from analytic hotspots, making analytic probe
///   loads inconsistent with the simulated ones.
fn measure_saturation(
    topo: &Topology,
    base: &SimConfig,
    bottleneck: ChannelId,
    w_max: f64,
    seed: u64,
    cfg: &FlowConfig,
) -> (f64, usize) {
    let Ok(nb) = extract(topo, bottleneck, cfg.sat_radius, cfg.sat_neighborhood) else {
        return (1.0, 0);
    };
    let Ok(routing) = DownUp::new().construct(&nb.topo) else {
        return (1.0, 0);
    };
    let whole_fabric = nb.topo.num_nodes() == topo.num_nodes();
    let mut peak_accepted = 0.0f64;
    let mut peak_util = 0.0f64;
    let mut sims = 0usize;
    for (i, &drive) in PROBE_DRIVES.iter().enumerate() {
        let sim_cfg = SimConfig {
            injection_rate: drive,
            warmup_cycles: cfg.sat_warmup,
            measure_cycles: cfg.sat_measure,
            ..*base
        };
        let stats = Simulator::new(
            routing.comm_graph(),
            routing.routing_tables(),
            sim_cfg,
            seed ^ 0xCAFE ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
        .run();
        let max_util = (0..routing.comm_graph().num_channels())
            .map(|c| stats.channel_utilization(c))
            .fold(0.0f64, f64::max);
        if std::env::var_os("FLOW_DEBUG").is_some() {
            eprintln!(
                "  probe drive {drive:.2}: accepted {:.4}  max_util {max_util:.4}",
                stats.accepted_traffic(),
            );
        }
        peak_accepted = peak_accepted.max(stats.accepted_traffic());
        peak_util = peak_util.max(max_util);
        sims += 1;
    }
    if std::env::var_os("FLOW_DEBUG").is_some() {
        eprintln!(
            "  probe: nodes {} (whole={whole_fabric})  A_peak {peak_accepted:.4}  \
             peak_util {peak_util:.4}  w_max {w_max:.4}",
            nb.topo.num_nodes(),
        );
    }
    let sat = if whole_fabric {
        peak_accepted
    } else if w_max > 1e-12 {
        peak_util / w_max
    } else {
        1.0
    };
    (sat.clamp(1e-3, 1.0), sims)
}

fn neighborhood_run(
    topo: &Topology,
    base: &SimConfig,
    representative: ChannelId,
    target_load: f64,
    seed: u64,
    cfg: &FlowConfig,
) -> Option<(irnet_sim::SimStats, f64)> {
    neighborhood_sim(topo, base, representative, target_load, seed, cfg)
        .map(|(stats, hops, _)| (stats, hops))
}

/// Extracts the neighborhood, calibrates the injection rate so the mapped
/// representative channel carries `target_load`, and runs the flit engine.
/// Returns `(stats, neighborhood avg hops, mapped center channel)`.
fn neighborhood_sim(
    topo: &Topology,
    base: &SimConfig,
    representative: ChannelId,
    target_load: f64,
    seed: u64,
    cfg: &FlowConfig,
) -> Option<(irnet_sim::SimStats, f64, ChannelId)> {
    let nb = extract(topo, representative, cfg.radius, cfg.max_neighborhood).ok()?;
    let routing = DownUp::new().construct(&nb.topo).ok()?;
    let sub_dec = Decomposer::new(routing.comm_graph(), routing.turn_table()).decompose(0);
    let u_c = sub_dec.unit_load[nb.center as usize];
    if u_c <= 1e-9 {
        return None;
    }
    let rate = (target_load / u_c).min(0.95);
    if rate < 1e-6 {
        return None;
    }
    let sim_cfg = SimConfig {
        injection_rate: rate,
        warmup_cycles: cfg.rep_warmup,
        measure_cycles: cfg.rep_measure,
        ..*base
    };
    let stats = Simulator::new(
        routing.comm_graph(),
        routing.routing_tables(),
        sim_cfg,
        seed,
    )
    .run();
    Some((stats, sub_dec.avg_hops, nb.center))
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_topology::gen;

    fn quick_cfg() -> FlowConfig {
        FlowConfig {
            max_dests: 0,
            route_sample: 16,
            rep_warmup: 100,
            rep_measure: 600,
            ..FlowConfig::default()
        }
    }

    fn base() -> SimConfig {
        SimConfig {
            packet_len: 32,
            ..SimConfig::default()
        }
    }

    #[test]
    fn prediction_is_deterministic() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(32, 4), 1).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let rates = [0.02, 0.1, 0.4];
        let run = || {
            predict(
                &topo,
                r.tree(),
                r.comm_graph(),
                r.turn_table(),
                &base(),
                &rates,
                7,
                &quick_cfg(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(
            serde_json::to_string(&a.points).unwrap(),
            serde_json::to_string(&b.points).unwrap()
        );
        assert_eq!(a.sat_throughput.to_bits(), b.sat_throughput.to_bits());
        assert_eq!(a.cluster_count, b.cluster_count);
    }

    #[test]
    fn curve_shape_is_sane() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(32, 4), 1).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let rates = [0.01, 0.05, 0.2, 0.6];
        let curve = predict(
            &topo,
            r.tree(),
            r.comm_graph(),
            r.turn_table(),
            &base(),
            &rates,
            7,
            &quick_cfg(),
        );
        assert_eq!(curve.points.len(), 4);
        assert!(curve.sat_throughput > 0.0 && curve.sat_throughput <= 1.0);
        // Accepted traffic is monotone non-decreasing in offered load and
        // capped at saturation.
        for w in curve.points.windows(2) {
            assert!(w[1].accepted >= w[0].accepted - 1e-12);
        }
        for p in &curve.points {
            assert!(p.accepted <= p.offered + 1e-12);
            // Latency at least covers serialization.
            assert!(p.median_latency >= 31.0, "median {}", p.median_latency);
            assert!(p.p99_latency >= p.median_latency);
        }
        assert!(curve.representative_sims >= 1);
        assert!(curve.cluster_count >= 1);
    }
}
