#![warn(missing_docs)]
//! # irnet-flow — the flow-level fast path
//!
//! A Parsimon-style prediction backend that trades the exact flit engine's
//! cycle-accuracy for orders-of-magnitude reach: instead of simulating
//! every flit in the whole fabric, it
//!
//! 1. **decomposes** ([`decompose`]) the fabric analytically into
//!    per-channel offered loads by pushing equal-split fractional flow
//!    over the minimal-route DAG each destination induces — no routing
//!    tables, no flits;
//! 2. **clusters** ([`cluster`]) channels by a totally ordered
//!    `(direction class, tree level, port class, quantized load)`
//!    [`Signature`];
//! 3. **simulates one representative per cluster** ([`neighborhood`],
//!    [`predict`](mod@predict)) with the existing active-set flit engine, on a small
//!    extracted neighborhood driven to the cluster's load, yielding
//!    empirical per-hop delay distributions ([`edist`]);
//! 4. **generalizes** ([`predict`](mod@predict)) by convolving per-hop distributions
//!    along deterministically sampled routes (latency percentiles) and by
//!    scaling the bottleneck cluster's measured channel capacity
//!    (saturation throughput).
//!
//! The backend plugs in next to [`irnet_metrics::sweep`]: same instance,
//! same offered-load ladder, same seed discipline — `irnet sweep
//! --backend flow` and the `flow_validate` harness compare the two
//! directly. Fixed seed ⇒ bit-stable output: every intermediate is keyed
//! on grid coordinates or ordered signatures, never on hash order or the
//! clock.

pub mod cluster;
pub mod decompose;
pub mod edist;
pub mod neighborhood;
pub mod predict;

pub use cluster::{cluster_at_rate, cluster_channels, load_bucket, Cluster, Partition, Signature};
pub use decompose::{Decomposer, Decomposition};
pub use edist::EDist;
pub use neighborhood::{extract, Neighborhood};
pub use predict::{predict, FlowConfig, FlowCurve, FlowPoint, FlowPredictor};

use irnet_metrics::Instance;
use irnet_sim::SimConfig;
use irnet_topology::Topology;

/// Predicts the latency/throughput curve for a constructed [`Instance`] —
/// the flow-backend twin of [`irnet_metrics::sweep::sweep`]. `rates`,
/// `seed`, and `base` mean exactly what they mean there.
pub fn predict_instance(
    topo: &Topology,
    inst: &Instance,
    base: &SimConfig,
    rates: &[f64],
    seed: u64,
    cfg: &FlowConfig,
) -> FlowCurve {
    predict(
        topo,
        &inst.tree,
        &inst.cg,
        &inst.table,
        base,
        rates,
        seed,
        cfg,
    )
}
