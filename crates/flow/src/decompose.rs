//! Stage 1 — analytic channel decomposition.
//!
//! From a communication graph and a turn table alone (no routing tables,
//! no flit simulation), compute the offered load every channel would carry
//! under uniform traffic at unit injection rate. The computation mirrors
//! the simulator's `RouteChoice::AdaptiveRandom` semantics: at every hop a
//! packet picks uniformly among the minimal-cost turn-legal output ports,
//! so traffic splits as equal fractional flow over the minimal-route DAG.
//!
//! Per destination `t` this is two linear passes:
//!
//! 1. reverse BFS over the channel-dependency-graph transpose gives
//!    `cost(c, t)` — the same per-channel costs
//!    [`irnet_turns::RoutingTables`] stores (a property test pins this);
//! 2. processing channels in decreasing cost order makes the minimal-route
//!    DAG topological, so each channel's inflow (injection plus transit)
//!    can be split equally among its minimal turn-legal successors in one
//!    sweep.
//!
//! Working entirely per destination keeps memory at O(channels) scratch,
//! which is what lets the flow backend decompose fabrics the routing-table
//! build cannot even allocate for (65k+ switches). For such fabrics a
//! deterministic stride sample of destinations is used and the totals are
//! rescaled.

use irnet_topology::{ChannelId, CommGraph, NodeId};
use irnet_turns::{ChannelDepGraph, TurnTable};
use std::collections::VecDeque;

/// Per-channel offered load under uniform traffic at unit injection rate
/// (1 flit/node/clock offered by every switch).
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// `unit_load[c]` — flits/clock channel `c` carries per unit injection.
    pub unit_load: Vec<f64>,
    /// Destinations actually walked.
    pub dests_sampled: u32,
    /// Total destinations in the fabric.
    pub total_dests: u32,
    /// Flow-weighted mean hop count of a packet (channels traversed).
    pub avg_hops: f64,
}

impl Decomposition {
    /// The most loaded channel and its unit load (lowest id on ties).
    pub fn bottleneck(&self) -> (ChannelId, f64) {
        let mut best = (0u32, 0.0f64);
        for (c, &w) in self.unit_load.iter().enumerate() {
            if w > best.1 {
                best = (c as ChannelId, w);
            }
        }
        best
    }
}

/// Shared per-fabric state for destination-sliced cost/flow queries: the
/// channel dependency graph and its CSR transpose, built once.
pub struct Decomposer<'a> {
    cg: &'a CommGraph,
    table: &'a TurnTable,
    /// Transpose offsets: predecessors of `c` at `pred[toff[c]..toff[c+1]]`.
    toff: Vec<u32>,
    pred: Vec<u32>,
}

impl<'a> Decomposer<'a> {
    /// Builds the dependency graph and its transpose for `cg` + `table`.
    pub fn new(cg: &'a CommGraph, table: &'a TurnTable) -> Decomposer<'a> {
        let dep = ChannelDepGraph::build(cg, table);
        let nch = dep.num_channels() as usize;
        let mut indeg = vec![0u32; nch];
        for c in 0..nch as u32 {
            for &s in dep.successors(c) {
                indeg[s as usize] += 1;
            }
        }
        let mut toff = vec![0u32; nch + 1];
        for i in 0..nch {
            toff[i + 1] = toff[i] + indeg[i];
        }
        let mut cursor = toff[..nch].to_vec();
        let mut pred = vec![0u32; dep.num_edges()];
        for c in 0..nch as u32 {
            for &s in dep.successors(c) {
                pred[cursor[s as usize] as usize] = c;
                cursor[s as usize] += 1;
            }
        }
        Decomposer {
            cg,
            table,
            toff,
            pred,
        }
    }

    /// The communication graph this decomposer was built over.
    pub fn comm_graph(&self) -> &CommGraph {
        self.cg
    }

    /// Per-channel cost to destination `t`: the minimal number of channels
    /// still to traverse given the packet traverses that channel first
    /// (`u16::MAX` = unreachable). Matches
    /// [`irnet_turns::RoutingTables::cost`] exactly.
    pub fn costs_for(&self, t: NodeId) -> Vec<u16> {
        let nch = self.cg.num_channels() as usize;
        let mut cost = vec![u16::MAX; nch];
        let mut queue = VecDeque::new();
        self.costs_into(t, &mut cost, &mut queue, &mut Vec::new());
        cost
    }

    /// Like [`Decomposer::costs_for`] but into caller scratch: `cost` must
    /// be pre-filled with `u16::MAX` and is reset on return via `touched`.
    fn costs_into(
        &self,
        t: NodeId,
        cost: &mut [u16],
        queue: &mut VecDeque<ChannelId>,
        touched: &mut Vec<ChannelId>,
    ) {
        let ch = self.cg.channels();
        queue.clear();
        touched.clear();
        for &c in ch.inputs(t) {
            cost[c as usize] = 1;
            queue.push_back(c);
            touched.push(c);
        }
        while let Some(c) = queue.pop_front() {
            let d = cost[c as usize];
            for &p in &self.pred[self.toff[c as usize] as usize..self.toff[c as usize + 1] as usize]
            {
                if cost[p as usize] == u16::MAX {
                    cost[p as usize] = d + 1;
                    queue.push_back(p);
                    touched.push(p);
                }
            }
        }
    }

    /// The deterministic lowest-port minimal route from `s` to `t`, given
    /// `costs` = [`Decomposer::costs_for`]`(t)`. Returns `None` when `t`
    /// is unreachable from `s`.
    pub fn route(&self, costs: &[u16], s: NodeId, t: NodeId) -> Option<Vec<ChannelId>> {
        let ch = self.cg.channels();
        let mut path = Vec::new();
        let mut v = s;
        // Injection hop: all output ports are candidates.
        let mut cur: ChannelId = *ch
            .outputs(v)
            .iter()
            .min_by_key(|&&c| costs[c as usize])
            .filter(|&&c| costs[c as usize] != u16::MAX)?;
        loop {
            path.push(cur);
            v = ch.sink(cur);
            if v == t {
                return Some(path);
            }
            let allowed = self.table.mask(v, ch.in_port(cur));
            let mut best = u16::MAX;
            let mut next = None;
            for (p, &c) in ch.outputs(v).iter().enumerate() {
                if (allowed >> p) & 1 == 1 && costs[c as usize] < best {
                    best = costs[c as usize];
                    next = Some(c);
                }
            }
            cur = next?;
        }
    }

    /// Runs the decomposition. At most `max_dests` destinations are walked
    /// (0 = all): when sampling, destinations are taken at a fixed stride
    /// and the accumulated loads rescaled by `n / sampled`, which is
    /// deterministic and unbiased under the uniform traffic matrix.
    pub fn decompose(&self, max_dests: usize) -> Decomposition {
        let n = self.cg.num_nodes();
        let nch = self.cg.num_channels() as usize;
        let ch = self.cg.channels();

        let dests: Vec<NodeId> = if max_dests == 0 || n as usize <= max_dests {
            (0..n).collect()
        } else {
            // Evenly strided sample, always including destination 0.
            (0..max_dests)
                .map(|j| ((j as u64 * n as u64) / max_dests as u64) as NodeId)
                .collect()
        };

        let mut unit_load = vec![0.0f64; nch];
        let mut cost = vec![u16::MAX; nch];
        let mut flow = vec![0.0f64; nch];
        let mut queue = VecDeque::new();
        let mut touched: Vec<ChannelId> = Vec::new();
        // Bucketed (counting-sort) order: channels grouped by cost.
        let mut hops_sum = 0.0f64;
        let pair_rate = if n > 1 { 1.0 / (n as f64 - 1.0) } else { 0.0 };

        for &t in &dests {
            self.costs_into(t, &mut cost, &mut queue, &mut touched);

            // Injection: every source splits its rate equally among its
            // minimal-cost output ports (the injection slot allows all).
            for v in 0..n {
                if v == t {
                    continue;
                }
                let outs = ch.outputs(v);
                let mut best = u16::MAX;
                for &c in outs {
                    best = best.min(cost[c as usize]);
                }
                if best == u16::MAX {
                    continue; // disconnected pair: certified fabrics never hit this
                }
                let k = outs.iter().filter(|&&c| cost[c as usize] == best).count();
                let share = pair_rate / k as f64;
                for &c in outs {
                    if cost[c as usize] == best {
                        flow[c as usize] += share;
                    }
                }
            }

            // Transit: decreasing cost order is topological on the
            // minimal-route DAG (each hop reduces cost by exactly 1).
            touched.sort_unstable_by_key(|&c| std::cmp::Reverse(cost[c as usize]));
            for &c in &touched {
                let f = flow[c as usize];
                if f <= 0.0 {
                    continue;
                }
                hops_sum += f;
                let k = cost[c as usize];
                let v = ch.sink(c);
                if k == 1 {
                    debug_assert_eq!(v, t);
                    continue; // delivered
                }
                let allowed = self.table.mask(v, ch.in_port(c));
                let outs = ch.outputs(v);
                let mut cnt = 0usize;
                for (p, &o) in outs.iter().enumerate() {
                    if (allowed >> p) & 1 == 1 && cost[o as usize] == k - 1 {
                        cnt += 1;
                    }
                }
                debug_assert!(cnt > 0, "cost-{k} channel with no minimal successor");
                if cnt == 0 {
                    continue;
                }
                let share = f / cnt as f64;
                for (p, &o) in outs.iter().enumerate() {
                    if (allowed >> p) & 1 == 1 && cost[o as usize] == k - 1 {
                        flow[o as usize] += share;
                    }
                }
            }

            for &c in &touched {
                unit_load[c as usize] += flow[c as usize];
                flow[c as usize] = 0.0;
                cost[c as usize] = u16::MAX;
            }
        }

        let sampled = dests.len() as u32;
        let scale = if sampled == 0 {
            0.0
        } else {
            n as f64 / sampled as f64
        };
        for w in &mut unit_load {
            *w *= scale;
        }
        // hops_sum counts flow-weighted channel traversals for `sampled`
        // destinations; each destination receives unit total packet rate.
        let avg_hops = if sampled == 0 {
            0.0
        } else {
            hops_sum / sampled as f64
        };

        Decomposition {
            unit_load,
            dests_sampled: sampled,
            total_dests: n,
            avg_hops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_core::DownUp;
    use irnet_topology::gen;

    #[test]
    fn costs_match_routing_tables() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(40, 4), 2).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let d = Decomposer::new(r.comm_graph(), r.turn_table());
        for t in 0..topo.num_nodes() {
            let costs = d.costs_for(t);
            for c in 0..r.comm_graph().num_channels() {
                assert_eq!(
                    costs[c as usize],
                    r.routing_tables().cost(t, c),
                    "t={t} c={c}"
                );
            }
        }
    }

    #[test]
    fn flow_is_conserved() {
        // Total flow-hops / destination equals avg hops; every channel load
        // is non-negative and the per-node delivered rate sums to n·unit.
        let topo = gen::random_irregular(gen::IrregularParams::paper(32, 4), 5).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let d = Decomposer::new(r.comm_graph(), r.turn_table());
        let dec = d.decompose(0);
        assert_eq!(dec.dests_sampled, 32);
        assert!(dec.avg_hops >= 1.0, "avg hops {}", dec.avg_hops);
        assert!(dec.unit_load.iter().all(|&w| w >= 0.0));
        // Sum of channel loads == total flow-hops == n * avg_hops (each
        // node offers unit rate).
        let sum: f64 = dec.unit_load.iter().sum();
        assert!(
            (sum - 32.0 * dec.avg_hops).abs() < 1e-6,
            "sum {sum} vs {}",
            32.0 * dec.avg_hops
        );
    }

    #[test]
    fn sampled_decomposition_approximates_full() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(64, 4), 7).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let d = Decomposer::new(r.comm_graph(), r.turn_table());
        let full = d.decompose(0);
        let half = d.decompose(32);
        assert_eq!(half.dests_sampled, 32);
        let (bf, wf) = full.bottleneck();
        let wh = half.unit_load[bf as usize];
        assert!(
            (wh - wf).abs() / wf < 0.5,
            "sampled bottleneck load {wh} vs full {wf}"
        );
    }

    #[test]
    fn route_is_minimal_and_connected() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), 3).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let d = Decomposer::new(r.comm_graph(), r.turn_table());
        let ch = r.comm_graph().channels();
        for t in [0u32, 5, 17] {
            let costs = d.costs_for(t);
            for s in 0..topo.num_nodes() {
                if s == t {
                    continue;
                }
                let path = d.route(&costs, s, t).expect("connected");
                assert_eq!(
                    path.len() as u16,
                    r.routing_tables().route_len(r.comm_graph(), s, t)
                );
                let mut v = s;
                for &c in &path {
                    assert_eq!(ch.start(c), v);
                    v = ch.sink(c);
                }
                assert_eq!(v, t);
            }
        }
    }
}
