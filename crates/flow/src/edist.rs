//! Empirical delay distributions ("edists").
//!
//! A distribution is stored as its values at `N_Q + 1` evenly spaced
//! quantiles — a compact, closed-under-arithmetic representation in the
//! spirit of parsimon's `EDistribution`. Convolution (for summing
//! independent per-hop delays along a route) and weighted mixture (for
//! merging per-route latency distributions into a network-wide one) both
//! reduce to building a weighted sample set and re-extracting the quantile
//! grid, so every operation is deterministic: no RNG, no hashing, no
//! wall-clock input.

/// Number of equal-probability quantile intervals in the grid.
const N_Q: usize = 64;

/// An empirical distribution over `f64` values, stored as the quantile
/// grid `q = 0, 1/N, …, 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct EDist {
    /// `qs[i]` is the value at quantile `i / N_Q`; non-decreasing.
    qs: Vec<f64>,
}

impl EDist {
    /// The degenerate distribution concentrated at `v`.
    pub fn constant(v: f64) -> EDist {
        EDist {
            qs: vec![v; N_Q + 1],
        }
    }

    /// Builds from weighted samples. Returns `None` when the total weight
    /// is zero (no samples). The input order does not matter — samples are
    /// sorted by value internally.
    pub fn from_weighted(samples: &[(f64, f64)]) -> Option<EDist> {
        let mut sorted: Vec<(f64, f64)> =
            samples.iter().filter(|&&(_, w)| w > 0.0).copied().collect();
        let total: f64 = sorted.iter().map(|&(_, w)| w).sum();
        if total <= 0.0 {
            return None;
        }
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut qs = Vec::with_capacity(N_Q + 1);
        let mut cum = 0.0;
        let mut idx = 0;
        for i in 0..=N_Q {
            let target = total * i as f64 / N_Q as f64;
            while idx < sorted.len() - 1 && cum + sorted[idx].1 < target {
                cum += sorted[idx].1;
                idx += 1;
            }
            qs.push(sorted[idx].0);
        }
        Some(EDist { qs })
    }

    /// Builds from histogram buckets `(value floor, count)` in increasing
    /// value order (the shape [`irnet_sim::Histogram::buckets`] yields).
    pub fn from_buckets(buckets: impl Iterator<Item = (u32, u64)>) -> Option<EDist> {
        let samples: Vec<(f64, f64)> = buckets.map(|(v, c)| (v as f64, c as f64)).collect();
        Self::from_weighted(&samples)
    }

    /// The value at quantile `q ∈ [0, 1]`, linearly interpolated on the
    /// grid.
    pub fn quantile(&self, q: f64) -> f64 {
        let pos = q.clamp(0.0, 1.0) * N_Q as f64;
        let lo = (pos.floor() as usize).min(N_Q);
        let hi = (lo + 1).min(N_Q);
        let frac = pos - lo as f64;
        self.qs[lo] * (1.0 - frac) + self.qs[hi] * frac
    }

    /// Mean, via the midpoint rule over the equal-probability intervals.
    pub fn mean(&self) -> f64 {
        let mut sum = 0.0;
        for i in 0..N_Q {
            sum += (self.qs[i] + self.qs[i + 1]) / 2.0;
        }
        sum / N_Q as f64
    }

    /// Applies `x ↦ x * scale + shift` to the distribution.
    pub fn affine(&self, scale: f64, shift: f64) -> EDist {
        let mut qs: Vec<f64> = self.qs.iter().map(|&v| v * scale + shift).collect();
        if scale < 0.0 {
            qs.reverse();
        }
        EDist { qs }
    }

    /// Clamps every value to at least `floor`.
    pub fn max_with(&self, floor: f64) -> EDist {
        EDist {
            qs: self.qs.iter().map(|&v| v.max(floor)).collect(),
        }
    }

    /// Whether the distribution is a point mass (all quantiles equal).
    pub fn is_point(&self) -> bool {
        self.qs[0] == self.qs[N_Q]
    }

    /// The distribution of the sum of two independent draws — one from
    /// `self`, one from `other` — approximated on the quantile grid by
    /// summing every pair of equal-probability interval midpoints. Adding
    /// a point mass is an exact shift, taken as a fast path.
    ///
    /// The `N_Q²` equal-weight pair sums are binned into a fixed uniform
    /// histogram spanning their support and the quantile grid is read off
    /// the cumulative counts — O(N_Q²) with small constants instead of a
    /// sort, which keeps warm flow-predictor queries in the millisecond
    /// range. The bin count (32× the quantile grid) keeps the binning
    /// error well below the midpoint-atom approximation error already
    /// inherent in the representation.
    pub fn convolve(&self, other: &EDist) -> EDist {
        if other.is_point() {
            return self.affine(1.0, other.qs[0]);
        }
        if self.is_point() {
            return other.affine(1.0, self.qs[0]);
        }
        let a = self.midpoints();
        let b = other.midpoints();
        let lo = a[0] + b[0];
        let hi = a[N_Q - 1] + b[N_Q - 1];
        if hi <= lo {
            return EDist::constant(lo);
        }
        const BINS: usize = 32 * N_Q;
        let scale = BINS as f64 / (hi - lo);
        let mut counts = [0u32; BINS];
        for &x in &a {
            for &y in &b {
                let bin = (((x + y) - lo) * scale) as usize;
                counts[bin.min(BINS - 1)] += 1;
            }
        }
        let total = (N_Q * N_Q) as f64;
        let mut qs = Vec::with_capacity(N_Q + 1);
        qs.push(lo);
        let mut cum = 0u32;
        let mut bin = 0usize;
        for i in 1..=N_Q {
            let target = total * i as f64 / N_Q as f64;
            while bin < BINS - 1 && f64::from(cum + counts[bin]) < target {
                cum += counts[bin];
                bin += 1;
            }
            if i == N_Q {
                qs.push(hi);
            } else {
                qs.push(lo + (bin as f64 + 0.5) / scale);
            }
        }
        EDist { qs }
    }

    /// The weighted mixture of several distributions. Returns `None` when
    /// `parts` is empty or all weights are zero.
    pub fn mixture(parts: &[(f64, &EDist)]) -> Option<EDist> {
        let mut samples = Vec::new();
        for &(w, d) in parts {
            if w <= 0.0 {
                continue;
            }
            for m in d.midpoints() {
                samples.push((m, w));
            }
        }
        EDist::from_weighted(&samples)
    }

    /// Midpoints of the equal-probability intervals: `N_Q` atoms of mass
    /// `1/N_Q` each.
    fn midpoints(&self) -> Vec<f64> {
        (0..N_Q)
            .map(|i| (self.qs[i] + self.qs[i + 1]) / 2.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_has_flat_quantiles() {
        let d = EDist::constant(3.0);
        assert_eq!(d.quantile(0.0), 3.0);
        assert_eq!(d.quantile(0.5), 3.0);
        assert_eq!(d.quantile(1.0), 3.0);
        assert_eq!(d.mean(), 3.0);
    }

    #[test]
    fn from_weighted_recovers_quantiles() {
        // 100 samples 1..=100, uniform weights.
        let samples: Vec<(f64, f64)> = (1..=100).map(|v| (v as f64, 1.0)).collect();
        let d = EDist::from_weighted(&samples).unwrap();
        assert!((d.quantile(0.5) - 50.0).abs() <= 2.0, "{}", d.quantile(0.5));
        assert!((d.mean() - 50.5).abs() <= 1.0, "{}", d.mean());
        assert!(d.quantile(1.0) >= 99.0);
    }

    #[test]
    fn empty_weights_yield_none() {
        assert!(EDist::from_weighted(&[]).is_none());
        assert!(EDist::from_weighted(&[(1.0, 0.0)]).is_none());
    }

    #[test]
    fn convolution_of_constants_adds() {
        let d = EDist::constant(2.0).convolve(&EDist::constant(5.0));
        assert!((d.mean() - 7.0).abs() < 1e-9);
        assert!((d.quantile(0.9) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn convolution_means_add() {
        let a = EDist::from_weighted(&[(1.0, 1.0), (3.0, 1.0)]).unwrap();
        let b = EDist::from_weighted(&[(10.0, 1.0), (20.0, 3.0)]).unwrap();
        let c = a.convolve(&b);
        assert!(
            (c.mean() - (a.mean() + b.mean())).abs() < 0.3,
            "{}",
            c.mean()
        );
    }

    #[test]
    fn mixture_interpolates() {
        let a = EDist::constant(0.0);
        let b = EDist::constant(10.0);
        let m = EDist::mixture(&[(1.0, &a), (3.0, &b)]).unwrap();
        assert!((m.mean() - 7.5).abs() < 0.2, "{}", m.mean());
    }

    #[test]
    fn affine_shifts_and_scales() {
        let d = EDist::constant(4.0).affine(0.5, -1.0);
        assert!((d.mean() - 1.0).abs() < 1e-9);
        let clamped = d.max_with(2.0);
        assert!((clamped.mean() - 2.0).abs() < 1e-9);
    }
}
