//! Stage 2 — channel clustering by signature.
//!
//! Channels with the same `(direction class, tree level, port class,
//! quantized offered load)` signature see statistically similar contention,
//! so one representative flit-level neighborhood simulation per cluster
//! suffices (the analogue of parsimon's link clustering). Everything here
//! is keyed on a totally ordered [`Signature`] through a `BTreeMap` —
//! cluster order, representative choice, and therefore every downstream
//! simulation seed depend only on the fabric and the loads, never on hash
//! iteration order.

use crate::decompose::Decomposition;
use irnet_topology::{ChannelId, CommGraph, CoordinatedTree};
use serde::Serialize;
use std::collections::BTreeMap;

/// Load bucket for channels carrying (essentially) no traffic; their hops
/// are modeled as uncontended without running a representative sim.
pub const IDLE_BUCKET: i16 = i16::MIN;

/// Offered load below which a channel is modeled as uncontended (queueing
/// delay at 1% utilization is negligible next to serialization + transit).
pub const IDLE_LOAD: f64 = 0.01;

/// Octave quantization of an offered load (flits/clock): bucket
/// `round(log2(load))`. Loads below [`IDLE_LOAD`] fall into
/// [`IDLE_BUCKET`].
pub fn load_bucket(load: f64) -> i16 {
    if load < IDLE_LOAD {
        IDLE_BUCKET
    } else {
        load.log2().round().clamp(-1000.0, 1000.0) as i16
    }
}

/// A channel-equivalence class key. Derives `Ord` so partitions and every
/// iteration over them are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct Signature {
    /// 0 = up (toward the root), 1 = down, 2 = level (cross links between
    /// equal tree levels).
    pub dir_class: u8,
    /// Tree level (BFS depth, `y` coordinate) of the channel's start
    /// switch, saturating at 255.
    pub level: u8,
    /// Port class: the start switch's output radix (its degree), which
    /// bounds how many flows can contend for the channel, saturating at
    /// 255.
    pub port_class: u8,
    /// Quantized offered load ([`load_bucket`]).
    pub load_bucket: i16,
}

impl Signature {
    /// The signature of channel `c` at offered load `load`.
    pub fn of(cg: &CommGraph, tree: &CoordinatedTree, c: ChannelId, load: f64) -> Signature {
        let d = cg.direction(c);
        let dir_class = if d.goes_up() {
            0
        } else if d.goes_down() {
            1
        } else {
            2
        };
        let start = cg.channels().start(c);
        Signature {
            dir_class,
            level: tree.y(start).min(255) as u8,
            port_class: cg.channels().outputs(start).len().min(255) as u8,
            load_bucket: load_bucket(load),
        }
    }
}

/// One equivalence class of channels.
#[derive(Debug, Clone, Serialize)]
pub struct Cluster {
    /// The shared signature.
    pub sig: Signature,
    /// Member channels, ascending.
    pub members: Vec<ChannelId>,
    /// The member whose load is closest to the cluster mean (lowest id on
    /// ties) — the channel whose neighborhood gets simulated.
    pub representative: ChannelId,
    /// Mean offered load over members.
    pub mean_load: f64,
}

/// A complete, deterministic partition of the fabric's channels.
#[derive(Debug, Clone, Serialize)]
pub struct Partition {
    /// Clusters in ascending signature order.
    pub clusters: Vec<Cluster>,
}

impl Partition {
    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// `cluster_of[c]` — index into `clusters` for every channel.
    pub fn cluster_index(&self, num_channels: u32) -> Vec<u32> {
        let mut idx = vec![u32::MAX; num_channels as usize];
        for (i, cl) in self.clusters.iter().enumerate() {
            for &c in &cl.members {
                idx[c as usize] = i as u32;
            }
        }
        idx
    }
}

/// Partitions all channels by signature under the given per-channel loads
/// (`loads[c]`, flits/clock — typically `rate · unit_load` from a
/// [`Decomposition`]).
pub fn cluster_channels(cg: &CommGraph, tree: &CoordinatedTree, loads: &[f64]) -> Partition {
    assert_eq!(loads.len(), cg.num_channels() as usize);
    let mut groups: BTreeMap<Signature, Vec<ChannelId>> = BTreeMap::new();
    for c in 0..cg.num_channels() {
        let sig = Signature::of(cg, tree, c, loads[c as usize]);
        groups.entry(sig).or_default().push(c);
    }
    let clusters = groups
        .into_iter()
        .map(|(sig, members)| {
            let mean_load =
                members.iter().map(|&c| loads[c as usize]).sum::<f64>() / members.len() as f64;
            let representative = members
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let da = (loads[a as usize] - mean_load).abs();
                    let db = (loads[b as usize] - mean_load).abs();
                    da.total_cmp(&db).then(a.cmp(&b))
                })
                .expect("clusters are non-empty");
            Cluster {
                sig,
                members,
                representative,
                mean_load,
            }
        })
        .collect();
    Partition { clusters }
}

/// Convenience: partition at a given injection rate straight from a
/// decomposition.
pub fn cluster_at_rate(
    cg: &CommGraph,
    tree: &CoordinatedTree,
    dec: &Decomposition,
    rate: f64,
) -> Partition {
    let loads: Vec<f64> = dec.unit_load.iter().map(|&w| w * rate).collect();
    cluster_channels(cg, tree, &loads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::Decomposer;
    use irnet_core::DownUp;
    use irnet_topology::gen;

    #[test]
    fn partition_covers_every_channel_once() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(32, 4), 1).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let dec = Decomposer::new(r.comm_graph(), r.turn_table()).decompose(0);
        let part = cluster_at_rate(r.comm_graph(), r.tree(), &dec, 0.1);
        let idx = part.cluster_index(r.comm_graph().num_channels());
        assert!(idx.iter().all(|&i| i != u32::MAX), "uncovered channel");
        let total: usize = part.clusters.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, r.comm_graph().num_channels() as usize);
        // Representatives are members of their own cluster.
        for cl in &part.clusters {
            assert!(cl.members.contains(&cl.representative));
        }
    }

    #[test]
    fn clustering_is_load_sensitive_but_stable() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(32, 4), 1).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let dec = Decomposer::new(r.comm_graph(), r.turn_table()).decompose(0);
        let a = cluster_at_rate(r.comm_graph(), r.tree(), &dec, 0.1);
        let b = cluster_at_rate(r.comm_graph(), r.tree(), &dec, 0.1);
        // Bit-stable: same fabric + loads => identical partition.
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        // Far fewer clusters than channels.
        assert!(a.len() < r.comm_graph().num_channels() as usize / 2);
    }

    #[test]
    fn load_buckets_are_octaves() {
        assert_eq!(load_bucket(0.0), IDLE_BUCKET);
        assert_eq!(load_bucket(0.005), IDLE_BUCKET);
        assert_eq!(load_bucket(1.0), 0);
        assert_eq!(load_bucket(2.0), 1);
        assert_eq!(load_bucket(4.0), 2);
        assert!(load_bucket(0.25) < load_bucket(0.5));
    }
}
