use crate::hist::Histogram;
use irnet_topology::{ChannelId, CommGraph, NodeId};

/// Raw measurement counters plus derived metrics for one simulation run.
///
/// All counters cover only the measurement window (after warm-up).
/// Equality is bit-exact over every counter — the engine-equivalence
/// tests compare whole `SimStats` values across scheduling cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimStats {
    /// Measured cycles.
    pub cycles: u32,
    /// Number of switches.
    pub num_nodes: u32,
    /// Flits delivered to their destination processors.
    pub flits_delivered: u64,
    /// Packets fully delivered (tail flit received).
    pub packets_delivered: u64,
    /// Sum of packet latencies (injection-queue entry to tail delivery),
    /// over `packets_delivered`.
    pub latency_sum: u64,
    /// Maximum single-packet latency observed.
    pub latency_max: u32,
    /// Full latency distribution (geometric buckets; supports percentile
    /// queries via [`Histogram::quantile`]).
    pub latency_hist: Histogram,
    /// Packets generated during measurement (offered, not necessarily
    /// delivered).
    pub packets_generated: u64,
    /// Flits that crossed each inter-switch physical channel's link stage,
    /// indexed by channel id.
    pub channel_flits: Vec<u64>,
    /// Flits delivered at each node (traffic *received* per destination).
    pub node_flits_delivered: Vec<u64>,
    /// Packets generated at each node during measurement.
    pub node_packets_generated: Vec<u64>,
    /// Cycles during which some header flit was blocked waiting for a free
    /// output (virtual) channel — a direct contention measure.
    pub header_block_cycles: u64,
    /// Sum over measured cycles of flits buffered in the network; divide by
    /// `cycles` for the average network occupancy.
    pub buffered_flit_cycles: u64,
    /// Whether the run was aborted by the deadlock watchdog.
    pub deadlocked: bool,
    /// Flits still buffered in the network when the run ended.
    pub flits_in_flight: u64,
    /// In-network flits destroyed by fault-driven reconfigurations,
    /// counted over the whole run (not just the measurement window).
    pub dropped_flits: u64,
    /// Packets destroyed by fault-driven reconfigurations (cut worms,
    /// unroutable survivors, traffic for dead destinations), counted over
    /// the whole run.
    pub dropped_packets: u64,
    /// Reconfiguration epochs applied during the run.
    pub reconfig_epochs: u32,
    /// Last cycle at which any flit advanced — on a deadlocked run this is
    /// the stall point the watchdog fired from.
    pub last_progress: u32,
    /// Flits that ever entered the network (whole run, warm-up included).
    pub flits_injected_total: u64,
    /// Flits handed to a local processor (whole run, warm-up included;
    /// unlike the measurement-window `flits_delivered`).
    pub flits_delivered_total: u64,
}

impl SimStats {
    /// Accepted traffic in flits per clock per node — the paper's
    /// throughput metric.
    pub fn accepted_traffic(&self) -> f64 {
        self.flits_delivered as f64 / (self.cycles as f64 * self.num_nodes as f64)
    }

    /// Average message latency in clocks — the paper's latency metric.
    /// `NaN` when no packet was delivered.
    pub fn avg_latency(&self) -> f64 {
        if self.packets_delivered == 0 {
            f64::NAN
        } else {
            self.latency_sum as f64 / self.packets_delivered as f64
        }
    }

    /// Offered load actually generated, in flits per clock per node.
    pub fn offered_traffic(&self, packet_len: u32) -> f64 {
        self.packets_generated as f64 * packet_len as f64
            / (self.cycles as f64 * self.num_nodes as f64)
    }

    /// Utilization of one output channel: average flits per clock crossing
    /// it (paper §5, Table 1 definition).
    pub fn channel_utilization(&self, c: ChannelId) -> f64 {
        self.channel_flits[c as usize] as f64 / self.cycles as f64
    }

    /// The paper's *node utilization*: the sum of the utilizations of all
    /// of a node's output channels divided by the number of ports
    /// connected to other switches.
    pub fn node_utilization(&self, cg: &CommGraph, v: NodeId) -> f64 {
        let outs = cg.channels().outputs(v);
        if outs.is_empty() {
            return 0.0;
        }
        let sum: f64 = outs.iter().map(|&c| self.channel_utilization(c)).sum();
        sum / outs.len() as f64
    }

    /// Node utilization of every node.
    pub fn node_utilizations(&self, cg: &CommGraph) -> Vec<f64> {
        (0..self.num_nodes)
            .map(|v| self.node_utilization(cg, v))
            .collect()
    }

    /// Latency percentile estimate in clocks (`None` if no packet was
    /// delivered).
    pub fn latency_quantile(&self, q: f64) -> Option<u32> {
        self.latency_hist.quantile(q)
    }

    /// Average number of flits buffered in the network per measured cycle
    /// (Little's-law style occupancy).
    pub fn avg_network_occupancy(&self) -> f64 {
        self.buffered_flit_cycles as f64 / self.cycles as f64
    }

    /// Header-blocking rate: blocked header-cycles per measured cycle.
    pub fn header_block_rate(&self) -> f64 {
        self.header_block_cycles as f64 / self.cycles as f64
    }

    /// The flit conservation identity over the whole run: every injected
    /// flit was delivered, destroyed by a reconfiguration, or is still
    /// buffered. Holds across down- *and* up-transition barriers (revived
    /// channels come back empty), so `irnet soak` asserts it per run.
    pub fn flits_conserved(&self) -> bool {
        self.flits_injected_total
            == self.flits_delivered_total + self.dropped_flits + self.flits_in_flight
    }
}

/// Feeds one finished run's throughput into a telemetry registry: the
/// `sim/run` span (`wall_seconds` of wall clock), delivered-work counters,
/// the `sim/cycles_per_sec` throughput gauge, and a log2 histogram of run
/// lengths. Strictly post-run — the simulator's hot path never sees the
/// registry, so attaching telemetry cannot perturb a run (proptest-pinned
/// in `tests/telemetry.rs`).
pub fn record_run_telemetry(tel: &irnet_telemetry::Telemetry, stats: &SimStats, wall_seconds: f64) {
    if !tel.is_enabled() {
        return;
    }
    tel.record_span("sim/run", wall_seconds);
    tel.counter("sim/runs").inc();
    tel.counter("sim/cycles").add(u64::from(stats.cycles));
    tel.counter("sim/flits_delivered")
        .add(stats.flits_delivered);
    tel.counter("sim/packets_delivered")
        .add(stats.packets_delivered);
    tel.counter("sim/dropped_flits").add(stats.dropped_flits);
    tel.counter("sim/reconfig_epochs")
        .add(u64::from(stats.reconfig_epochs));
    if stats.deadlocked {
        tel.counter("sim/deadlocks").inc();
    }
    if wall_seconds > 0.0 {
        tel.gauge("sim/cycles_per_sec")
            .set(f64::from(stats.cycles) / wall_seconds);
    }
    tel.histogram("sim/run_cycles")
        .record(u64::from(stats.cycles));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SimStats {
        SimStats {
            cycles: 1000,
            num_nodes: 4,
            flits_delivered: 2000,
            packets_delivered: 100,
            latency_sum: 25_000,
            latency_max: 900,
            latency_hist: {
                let mut h = Histogram::new();
                for i in 0..100 {
                    h.record(200 + 2 * i);
                }
                h
            },
            packets_generated: 120,
            channel_flits: vec![500, 250, 0, 1000],
            node_flits_delivered: vec![500, 500, 500, 500],
            node_packets_generated: vec![30, 30, 30, 30],
            header_block_cycles: 150,
            buffered_flit_cycles: 12_000,
            deadlocked: false,
            flits_in_flight: 0,
            dropped_flits: 0,
            dropped_packets: 0,
            reconfig_epochs: 0,
            last_progress: 0,
            flits_injected_total: 2400,
            flits_delivered_total: 2400,
        }
    }

    #[test]
    fn derived_metrics() {
        let s = stats();
        assert!((s.accepted_traffic() - 0.5).abs() < 1e-12);
        assert!((s.avg_latency() - 250.0).abs() < 1e-12);
        assert!((s.channel_utilization(0) - 0.5).abs() < 1e-12);
        assert!((s.offered_traffic(20) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn latency_is_nan_without_deliveries() {
        let mut s = stats();
        s.packets_delivered = 0;
        assert!(s.avg_latency().is_nan());
    }

    #[test]
    fn occupancy_and_blocking_rates() {
        let s = stats();
        assert!((s.avg_network_occupancy() - 12.0).abs() < 1e-12);
        assert!((s.header_block_rate() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn conservation_balances_all_four_counters() {
        let mut s = stats();
        assert!(s.flits_conserved());
        s.dropped_flits = 64;
        assert!(!s.flits_conserved());
        s.flits_injected_total += 64;
        assert!(s.flits_conserved());
        s.flits_in_flight = 3;
        s.flits_injected_total += 3;
        assert!(s.flits_conserved());
    }

    #[test]
    fn latency_quantiles_come_from_the_histogram() {
        let s = stats();
        let p50 = s.latency_quantile(0.5).unwrap();
        assert!((190..=310).contains(&p50), "median {p50}");
        assert!(s.latency_quantile(0.99).unwrap() >= p50);
    }
}
