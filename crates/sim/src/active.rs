//! Dense bitset worklists for the occupancy-driven simulator core.
//!
//! The engine keeps one [`ActiveSet`] per pipeline stage (occupied staging
//! registers per channel, non-empty input FIFOs/source queues, pending
//! ejections). Membership updates are O(1) bit operations; iteration cost
//! is O(words + live entries) instead of O(universe), which is what makes
//! a nearly idle cycle cheap. Iteration order is always ascending by index
//! (optionally rotated by an offset), so the active-set schedule visits
//! live entries in exactly the order the dense reference scan would, and
//! the two cores stay bit-exact.

/// A fixed-universe set of `u32` indices backed by a `u64` bitmap.
#[derive(Debug, Clone)]
pub(crate) struct ActiveSet {
    words: Vec<u64>,
    len: usize,
}

impl ActiveSet {
    /// An empty set over the universe `0..len`.
    pub(crate) fn new(len: usize) -> ActiveSet {
        ActiveSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Adds `i` to the set (idempotent).
    #[inline]
    pub(crate) fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes `i` from the set (idempotent).
    #[inline]
    pub(crate) fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Membership test (used by the cross-core consistency asserts).
    #[cfg(debug_assertions)]
    #[inline]
    pub(crate) fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Appends the members in ascending order to `out` (not cleared).
    pub(crate) fn collect(&self, out: &mut Vec<u32>) {
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push((w * 64) as u32 + b);
                bits &= bits - 1;
            }
        }
    }

    /// Appends the members in the rotated order `offset, offset+1, …,
    /// len-1, 0, 1, …, offset-1` (restricted to members) to `out`.
    /// This is the dense scan order `(k + offset) % len` filtered to live
    /// entries, which preserves the engine's rotating-offset fairness.
    pub(crate) fn collect_rotated(&self, offset: usize, out: &mut Vec<u32>) {
        debug_assert!(offset < self.len.max(1));
        let split = out.len();
        self.collect(out);
        // `out[split..]` is ascending; rotate it so entries >= offset come
        // first. Binary search for the split point.
        let pivot = out[split..].partition_point(|&i| (i as usize) < offset);
        out[split..].rotate_left(pivot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_collect() {
        let mut s = ActiveSet::new(200);
        for i in [0usize, 63, 64, 65, 130, 199] {
            s.insert(i);
        }
        s.insert(65); // idempotent
        s.remove(130);
        s.remove(130);
        let mut v = Vec::new();
        s.collect(&mut v);
        assert_eq!(v, [0, 63, 64, 65, 199]);
    }

    #[test]
    fn rotated_order_matches_dense_scan() {
        let mut s = ActiveSet::new(10);
        for i in [1usize, 4, 7, 9] {
            s.insert(i);
        }
        for offset in 0..10 {
            let mut got = Vec::new();
            s.collect_rotated(offset, &mut got);
            let want: Vec<u32> = (0..10)
                .map(|k| ((k + offset) % 10) as u32)
                .filter(|&i| [1, 4, 7, 9].contains(&i))
                .collect();
            assert_eq!(got, want, "offset {offset}");
        }
    }

    #[test]
    fn collect_appends_without_clearing() {
        let mut s = ActiveSet::new(8);
        s.insert(3);
        let mut v = vec![99u32];
        s.collect_rotated(0, &mut v);
        assert_eq!(v, [99, 3]);
    }
}
