#![warn(missing_docs)]
//! A cycle-accurate, flit-level simulator for wormhole-routed irregular
//! networks — the workspace's substitute for the IRFlexSim0.5 simulator the
//! paper evaluates on (see DESIGN.md §3).
//!
//! Timing model (paper §5):
//!
//! * a routing header is routed and arbitrated to an output channel in one
//!   clock;
//! * a data flit moves from an input channel to an output channel (through
//!   the crossbar) in one clock;
//! * a flit traverses a link in one clock.
//!
//! Switches are input-buffered with configurable FIFO depth and an optional
//! number of virtual channels per physical channel. Wormhole switching is
//! modelled faithfully: the header claims an output (virtual) channel, body
//! flits stream behind it, and the channel is released only after the tail
//! flit passes. Each node has one injection and one ejection port
//! (the attached processor), each moving at most one flit per clock and
//! reserved wormhole-style like any other channel.
//!
//! The simulator is deterministic per seed and allocates nothing on its
//! per-cycle hot path.
//!
//! Two bit-exact scheduling cores are provided (see [`EngineCore`] and
//! DESIGN.md §11): the default occupancy-driven *active-set* core, whose
//! per-cycle cost scales with the number of live flits rather than the
//! network size, and a dense reference scan kept for differential testing.
//! [`InjectionSampling::Geometric`] additionally removes the per-node
//! per-cycle RNG draw at low loads (opt-in; its own RNG stream).
//!
//! ```
//! use irnet_topology::gen;
//! use irnet_core::DownUp;
//! use irnet_sim::{SimConfig, Simulator};
//!
//! let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 3).unwrap();
//! let routing = DownUp::new().construct(&topo).unwrap();
//! let cfg = SimConfig {
//!     packet_len: 16,
//!     injection_rate: 0.05,
//!     warmup_cycles: 500,
//!     measure_cycles: 2_000,
//!     ..SimConfig::default()
//! };
//! let stats = Simulator::new(routing.comm_graph(), routing.routing_tables(), cfg, 7)
//!     .run();
//! assert!(stats.packets_delivered > 0);
//! ```

mod active;
mod config;
mod engine;
mod hist;
pub mod record;
mod stats;
pub mod trace;
mod traffic;

pub use config::{EngineCore, InjectionSampling, RouteChoice, SimConfig};
pub use engine::{FaultEpoch, Simulator};
pub use hist::Histogram;
pub use record::{BlockedWorm, Recorder, SimEvent};
pub use stats::{record_run_telemetry, SimStats};
pub use trace::{replay, ReplayResult, Trace, TraceEntry, TraceError};
pub use traffic::{ArrivalProcess, TrafficPattern};
