//! Trace-driven workloads: replay an explicit list of (time, src, dst)
//! packet injections instead of a synthetic arrival process.
//!
//! This is the substitution path for "production traces" the paper's
//! setting implies but does not publish: record a workload once (or
//! synthesize one with the generators below), then replay it identically
//! against different routing algorithms and compare makespan and latency
//! on *exactly* the same packet sequence.

use crate::config::SimConfig;
use crate::engine::Simulator;
use crate::stats::SimStats;
use irnet_topology::{CommGraph, NodeId};
use irnet_turns::RoutingTables;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One packet injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Injection clock.
    pub time: u32,
    /// Source switch.
    pub src: NodeId,
    /// Destination switch.
    pub dst: NodeId,
}

/// Trace validation / parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// An entry's source equals its destination.
    SelfTraffic {
        /// Index of the offending entry.
        index: usize,
    },
    /// An entry references a node outside the network.
    NodeOutOfRange {
        /// Index of the offending entry.
        index: usize,
        /// The unknown node.
        node: NodeId,
    },
    /// Malformed CSV input.
    Parse(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::SelfTraffic { index } => {
                write!(f, "trace entry {index} has src == dst")
            }
            TraceError::NodeOutOfRange { index, node } => {
                write!(f, "trace entry {index} references unknown node {node}")
            }
            TraceError::Parse(msg) => write!(f, "trace parse error: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A validated, time-sorted packet trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Validates entries against a network of `num_nodes` switches and
    /// sorts them by time (stable, so same-cycle order is preserved).
    pub fn new(mut entries: Vec<TraceEntry>, num_nodes: u32) -> Result<Trace, TraceError> {
        for (i, e) in entries.iter().enumerate() {
            if e.src == e.dst {
                return Err(TraceError::SelfTraffic { index: i });
            }
            for node in [e.src, e.dst] {
                if node >= num_nodes {
                    return Err(TraceError::NodeOutOfRange { index: i, node });
                }
            }
        }
        entries.sort_by_key(|e| e.time);
        Ok(Trace { entries })
    }

    /// The entries, sorted by time.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes as `time,src,dst` CSV lines with a header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time,src,dst\n");
        for e in &self.entries {
            out.push_str(&format!("{},{},{}\n", e.time, e.src, e.dst));
        }
        out
    }

    /// Parses the CSV produced by [`Trace::to_csv`].
    pub fn from_csv(text: &str, num_nodes: u32) -> Result<Trace, TraceError> {
        let mut entries = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || (ln == 0 && line == "time,src,dst") {
                continue;
            }
            let mut parts = line.split(',');
            let mut field = |name: &str| {
                parts
                    .next()
                    .ok_or_else(|| TraceError::Parse(format!("line {}: missing {name}", ln + 1)))?
                    .trim()
                    .parse::<u32>()
                    .map_err(|_| TraceError::Parse(format!("line {}: bad {name}", ln + 1)))
            };
            let time = field("time")?;
            let src = field("src")?;
            let dst = field("dst")?;
            entries.push(TraceEntry { time, src, dst });
        }
        Trace::new(entries, num_nodes)
    }

    /// Serializes as JSONL: one `{"time":..,"src":..,"dst":..}` object per
    /// line — the interchange format for externally recorded workloads
    /// (CSV stays available for spreadsheet-style tooling).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "{{\"time\":{},\"src\":{},\"dst\":{}}}\n",
                e.time, e.src, e.dst
            ));
        }
        out
    }

    /// Parses the JSONL produced by [`Trace::to_jsonl`]. Blank lines and
    /// `#` comment lines are skipped; unknown keys are ignored so traces
    /// carrying extra metadata still load.
    pub fn from_jsonl(text: &str, num_nodes: u32) -> Result<Trace, TraceError> {
        use serde::Value;
        let mut entries = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let doc: Value = serde_json::from_str(line)
                .map_err(|e| TraceError::Parse(format!("line {}: {e}", ln + 1)))?;
            let field = |name: &str| -> Result<u32, TraceError> {
                match doc.get(name) {
                    Some(Value::U64(x)) if *x <= u64::from(u32::MAX) => Ok(*x as u32),
                    Some(Value::I64(x)) if *x >= 0 && *x <= i64::from(u32::MAX) => Ok(*x as u32),
                    Some(_) => Err(TraceError::Parse(format!("line {}: bad {name}", ln + 1))),
                    None => Err(TraceError::Parse(format!(
                        "line {}: missing {name}",
                        ln + 1
                    ))),
                }
            };
            entries.push(TraceEntry {
                time: field("time")?,
                src: field("src")?,
                dst: field("dst")?,
            });
        }
        Trace::new(entries, num_nodes)
    }

    /// A synthetic uniform trace: `packets` packets with uniformly random
    /// sources, destinations and injection times in `0..duration`.
    pub fn synthetic_uniform(num_nodes: u32, packets: u32, duration: u32, seed: u64) -> Trace {
        assert!(num_nodes >= 2);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let entries = (0..packets)
            .map(|_| {
                let src = rng.gen_range(0..num_nodes);
                let mut dst = rng.gen_range(0..num_nodes - 1);
                if dst >= src {
                    dst += 1;
                }
                TraceEntry {
                    time: rng.gen_range(0..duration.max(1)),
                    src,
                    dst,
                }
            })
            .collect();
        Trace::new(entries, num_nodes).expect("synthetic trace is valid by construction")
    }

    /// An all-to-one incast burst at time zero: every node sends one packet
    /// to `target` simultaneously — the worst case for tree-based routings.
    pub fn incast(num_nodes: u32, target: NodeId) -> Trace {
        let entries = (0..num_nodes)
            .filter(|&v| v != target)
            .map(|src| TraceEntry {
                time: 0,
                src,
                dst: target,
            })
            .collect();
        Trace::new(entries, num_nodes).expect("incast trace is valid by construction")
    }
}

/// Result of a trace replay.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Standard simulation statistics (all packets are measured).
    pub stats: SimStats,
    /// Clock at which the last flit was delivered (`None` if the network
    /// failed to drain within the deadline).
    pub makespan: Option<u32>,
}

/// Replays `trace` over a routing: injects each entry at its clock, then
/// drains. `cfg.injection_rate` is ignored (forced to zero);
/// `cfg.warmup_cycles` is forced to zero so every packet is measured.
/// `drain_deadline` bounds the drain phase.
pub fn replay(
    cg: &CommGraph,
    tables: &RoutingTables,
    cfg: SimConfig,
    trace: &Trace,
    seed: u64,
    drain_deadline: u32,
) -> ReplayResult {
    let cfg = SimConfig {
        injection_rate: 0.0,
        warmup_cycles: 0,
        ..cfg
    };
    let mut sim = Simulator::new(cg, tables, cfg, seed);
    let mut i = 0;
    while i < trace.entries.len() {
        while i < trace.entries.len() && trace.entries[i].time <= sim.now() {
            sim.enqueue_packet(trace.entries[i].src, trace.entries[i].dst);
            i += 1;
        }
        sim.tick();
    }
    let drained = sim.drain(drain_deadline);
    let makespan = drained.then(|| sim.now());
    ReplayResult {
        stats: sim.finish(),
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_core::DownUp;
    use irnet_topology::gen;

    fn quick_cfg() -> SimConfig {
        SimConfig {
            packet_len: 8,
            warmup_cycles: 0,
            measure_cycles: 100_000,
            ..SimConfig::default()
        }
    }

    #[test]
    fn trace_validation_and_sorting() {
        let t = Trace::new(
            vec![
                TraceEntry {
                    time: 9,
                    src: 0,
                    dst: 1,
                },
                TraceEntry {
                    time: 1,
                    src: 2,
                    dst: 0,
                },
            ],
            3,
        )
        .unwrap();
        assert_eq!(t.entries()[0].time, 1);
        assert_eq!(
            Trace::new(
                vec![TraceEntry {
                    time: 0,
                    src: 1,
                    dst: 1
                }],
                3
            ),
            Err(TraceError::SelfTraffic { index: 0 })
        );
        assert_eq!(
            Trace::new(
                vec![TraceEntry {
                    time: 0,
                    src: 1,
                    dst: 7
                }],
                3
            ),
            Err(TraceError::NodeOutOfRange { index: 0, node: 7 })
        );
    }

    #[test]
    fn csv_roundtrip() {
        let t = Trace::synthetic_uniform(10, 50, 200, 4);
        let csv = t.to_csv();
        let back = Trace::from_csv(&csv, 10).unwrap();
        assert_eq!(t, back);
        assert!(Trace::from_csv("time,src,dst\n1,2\n", 10).is_err());
        assert!(Trace::from_csv("nonsense\n", 10).is_err());
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = Trace::synthetic_uniform(10, 50, 200, 4);
        let jsonl = t.to_jsonl();
        let back = Trace::from_jsonl(&jsonl, 10).unwrap();
        assert_eq!(t, back);
        // Unknown keys are tolerated, malformed lines are not.
        let extra = "{\"time\":1,\"src\":0,\"dst\":2,\"size\":9}\n# comment\n";
        assert_eq!(Trace::from_jsonl(extra, 10).unwrap().len(), 1);
        assert!(Trace::from_jsonl("{\"time\":1,\"src\":0}\n", 10).is_err());
        assert!(Trace::from_jsonl("not json\n", 10).is_err());
        // CSV and JSONL agree on the same trace.
        assert_eq!(Trace::from_csv(&t.to_csv(), 10).unwrap(), back);
    }

    #[test]
    fn replay_delivers_every_packet() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(12, 4), 3).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let trace = Trace::synthetic_uniform(12, 60, 500, 7);
        let result = replay(
            r.comm_graph(),
            r.routing_tables(),
            quick_cfg(),
            &trace,
            1,
            100_000,
        );
        let makespan = result.makespan.expect("trace must drain");
        assert_eq!(result.stats.packets_delivered, 60);
        assert_eq!(result.stats.flits_delivered, 60 * 8);
        assert!(
            makespan >= 500,
            "last injection at ~500, makespan {makespan}"
        );
    }

    #[test]
    fn incast_stresses_the_target_but_drains() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 5).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let trace = Trace::incast(16, 0);
        assert_eq!(trace.len(), 15);
        let result = replay(
            r.comm_graph(),
            r.routing_tables(),
            quick_cfg(),
            &trace,
            2,
            200_000,
        );
        assert!(result.makespan.is_some(), "incast deadlocked or stalled");
        assert_eq!(result.stats.packets_delivered, 15);
        // Ejection is the bottleneck: makespan at least 15 packets × 8
        // flits through one ejection port.
        assert!(result.makespan.unwrap() as u64 >= 15 * 8);
    }

    #[test]
    fn replay_is_deterministic_and_algorithm_comparable() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 6).unwrap();
        let trace = Trace::synthetic_uniform(16, 100, 300, 9);
        let r = DownUp::new().construct(&topo).unwrap();
        let a = replay(
            r.comm_graph(),
            r.routing_tables(),
            quick_cfg(),
            &trace,
            3,
            100_000,
        );
        let b = replay(
            r.comm_graph(),
            r.routing_tables(),
            quick_cfg(),
            &trace,
            3,
            100_000,
        );
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.stats.latency_sum, b.stats.latency_sum);
    }
}
