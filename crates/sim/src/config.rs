use crate::traffic::{ArrivalProcess, TrafficPattern};

/// How the simulator picks among the minimal legal output candidates of a
/// header flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteChoice {
    /// Each arbitration cycle, pick uniformly at random among the minimal
    /// candidates whose output (virtual) channel is currently free; wait if
    /// none is. This is the paper's setup: shortest possible paths with a
    /// random choice when several exist, made adaptively hop by hop.
    AdaptiveRandom,
    /// Pick one minimal candidate port uniformly at random when the header
    /// first arbitrates and wait for that specific port (oblivious).
    ObliviousRandom,
    /// Always prefer the lowest-numbered free minimal candidate
    /// (deterministic given traffic; useful for debugging).
    FirstFree,
    /// Fully deterministic routing: always wait for the lowest-numbered
    /// minimal candidate port, ignoring availability of the others. This
    /// models deterministic (source-routed) schemes such as the DFS
    /// up*/down* of Robles et al., where each (position, destination) pair
    /// uses one fixed output.
    DeterministicMinimal,
}

/// Which scheduling core the simulator runs (see DESIGN.md §11).
///
/// Both cores are bit-exact: they produce identical [`crate::SimStats`]
/// (including RNG-driven tie-breaks) for every configuration. The dense
/// reference exists so equivalence tests and regressions can always fall
/// back to the obviously-correct O(network) scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineCore {
    /// Occupancy-driven worklists: each pipeline stage iterates only over
    /// live entries (occupied staging registers, non-empty input queues,
    /// pending ejections). The default; cycles cost O(live entries).
    #[default]
    ActiveSet,
    /// The dense reference scan: every stage walks the whole network every
    /// clock. O(network size) per cycle; kept for differential testing.
    DenseReference,
}

/// How packet arrivals are sampled from the configured arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InjectionSampling {
    /// One Bernoulli draw per node per clock — the seed implementation's
    /// RNG stream. The default; all golden RNG pins assume this mode.
    #[default]
    PerCycle,
    /// Skip-sample idle cycles per source: draw the gap to each node's
    /// next arrival from the matching geometric distribution, so an idle
    /// network costs zero RNG calls per clock. Statistically identical
    /// arrival law to [`InjectionSampling::PerCycle`] but a different RNG
    /// stream (it has its own determinism pins). Only valid with
    /// [`ArrivalProcess::Bernoulli`].
    Geometric,
}

/// Simulator configuration. Defaults mirror the paper's setup (§5) except
/// for run lengths, which callers size per experiment.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Flits per packet (paper: 128).
    pub packet_len: u32,
    /// Offered load in flits per node per clock. Each node starts a new
    /// packet each cycle with probability `injection_rate / packet_len`.
    pub injection_rate: f64,
    /// FIFO depth, in flits, of each input (virtual) channel buffer.
    pub buffer_depth: u32,
    /// Virtual channels per physical channel (paper baseline: 1).
    pub virtual_channels: u32,
    /// Cycles simulated before measurement starts.
    pub warmup_cycles: u32,
    /// Cycles measured.
    pub measure_cycles: u32,
    /// Output-selection policy.
    pub route_choice: RouteChoice,
    /// Traffic pattern (paper: uniform).
    pub traffic: TrafficPattern,
    /// Packet arrival process (paper: Bernoulli).
    pub arrivals: ArrivalProcess,
    /// Non-minimal escape routing ("misrouting"): when a header has been
    /// blocked for this many consecutive cycles, it may also claim a
    /// non-minimal but turn-legal output (both routings in the paper are
    /// non-minimal adaptive; `None`, the default, keeps the paper's
    /// shortest-possible-paths setup).
    pub misroute_patience: Option<u32>,
    /// Per-packet cap on non-minimal detours (livelock bound).
    pub max_detours: u32,
    /// Abort and report a deadlock if no flit moves for this many
    /// consecutive cycles while packets are in flight. With a verified
    /// deadlock-free routing this never triggers; it exists so tests can
    /// demonstrate that unrestricted routing deadlocks.
    pub deadlock_threshold: u32,
    /// Scheduling core (active-set worklists vs the dense reference scan;
    /// bit-exact either way).
    pub engine_core: EngineCore,
    /// Arrival sampling strategy (per-cycle Bernoulli draws vs geometric
    /// idle-cycle skipping).
    pub injection_sampling: InjectionSampling,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            packet_len: 128,
            injection_rate: 0.01,
            buffer_depth: 2,
            virtual_channels: 1,
            warmup_cycles: 2_000,
            measure_cycles: 8_000,
            route_choice: RouteChoice::AdaptiveRandom,
            traffic: TrafficPattern::Uniform,
            arrivals: ArrivalProcess::Bernoulli,
            misroute_patience: None,
            max_detours: 4,
            deadlock_threshold: 20_000,
            engine_core: EngineCore::ActiveSet,
            injection_sampling: InjectionSampling::PerCycle,
        }
    }
}

impl SimConfig {
    /// The paper's configuration at a given offered load, with run lengths
    /// sized for the 128-switch experiments.
    pub fn paper(injection_rate: f64) -> SimConfig {
        SimConfig {
            injection_rate,
            ..SimConfig::default()
        }
    }

    /// Total simulated cycles.
    pub fn total_cycles(&self) -> u32 {
        self.warmup_cycles + self.measure_cycles
    }

    /// Validates the configuration, panicking with a clear message on
    /// nonsensical values. Called by the simulator constructor.
    pub fn validate(&self) {
        assert!(
            self.packet_len >= 2,
            "packets need a header and a tail flit"
        );
        assert!(self.injection_rate >= 0.0, "negative injection rate");
        assert!(
            self.buffer_depth >= 1,
            "buffers must hold at least one flit"
        );
        assert!(
            (1..=8).contains(&self.virtual_channels),
            "virtual channels must be in 1..=8 (round-robin state and \
             per-channel occupancy counters assume a small VC count)"
        );
        assert!(self.measure_cycles > 0, "nothing to measure");
        assert!(
            self.injection_sampling == InjectionSampling::PerCycle
                || self.arrivals == ArrivalProcess::Bernoulli,
            "InjectionSampling::Geometric requires ArrivalProcess::Bernoulli \
             (on/off sources need per-cycle state updates)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::default();
        assert_eq!(c.packet_len, 128);
        assert_eq!(c.virtual_channels, 1);
        assert_eq!(c.route_choice, RouteChoice::AdaptiveRandom);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "header and a tail")]
    fn rejects_single_flit_packets() {
        SimConfig {
            packet_len: 1,
            ..SimConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "virtual channels")]
    fn rejects_zero_vcs() {
        SimConfig {
            virtual_channels: 0,
            ..SimConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "requires ArrivalProcess::Bernoulli")]
    fn rejects_geometric_sampling_of_bursty_sources() {
        SimConfig {
            injection_sampling: InjectionSampling::Geometric,
            arrivals: ArrivalProcess::OnOff {
                mean_burst: 50,
                burstiness: 4.0,
            },
            ..SimConfig::default()
        }
        .validate();
    }

    #[test]
    fn geometric_sampling_of_bernoulli_sources_is_valid() {
        SimConfig {
            injection_sampling: InjectionSampling::Geometric,
            ..SimConfig::default()
        }
        .validate();
    }
}
