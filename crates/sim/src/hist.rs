//! A compact latency histogram with percentile queries.
//!
//! Buckets grow geometrically (~9% per bucket), so percentile estimates
//! stay within a few percent of the exact value across the whole
//! clock-latency range while the histogram itself stays a few hundred
//! counters regardless of run length.

/// Geometric-bucket histogram of `u32` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

/// Growth factor between bucket upper bounds.
const GROWTH: f64 = 1.09;
/// Exact buckets below this value (one per integer).
const LINEAR_LIMIT: u32 = 64;

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: Vec::new(),
            total: 0,
        }
    }

    fn bucket_of(value: u32) -> usize {
        if value < LINEAR_LIMIT {
            value as usize
        } else {
            let extra = (value as f64 / LINEAR_LIMIT as f64).ln() / GROWTH.ln();
            LINEAR_LIMIT as usize + extra as usize
        }
    }

    /// Lower bound of a bucket (used to report percentile estimates).
    fn bucket_floor(b: usize) -> u32 {
        if b < LINEAR_LIMIT as usize {
            b as u32
        } else {
            (LINEAR_LIMIT as f64 * GROWTH.powi((b - LINEAR_LIMIT as usize) as i32)) as u32
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u32) {
        let b = Self::bucket_of(value);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Estimated value at quantile `q` in `[0, 1]`; `None` when empty.
    /// Returns the lower bound of the bucket containing the quantile, so
    /// the estimate never exceeds the true value by more than one bucket.
    pub fn quantile(&self, q: f64) -> Option<u32> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::bucket_floor(b));
            }
        }
        Some(Self::bucket_floor(self.counts.len().saturating_sub(1)))
    }

    /// Median estimate.
    pub fn median(&self) -> Option<u32> {
        self.quantile(0.5)
    }

    /// Iterates the non-empty buckets as `(bucket floor, count)` pairs in
    /// increasing value order — the raw material for turning a finished
    /// run's latency histogram into an empirical distribution.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| (Self::bucket_floor(b), c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.median(), None);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [1u32, 2, 3, 4, 5] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.median(), Some(3));
        assert_eq!(h.quantile(1.0), Some(5));
    }

    #[test]
    fn large_values_are_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 0..10_000u32 {
            h.record(v);
        }
        let p95 = h.quantile(0.95).unwrap() as f64;
        assert!((p95 / 9_500.0 - 1.0).abs() < 0.10, "p95 estimate {p95}");
        let p50 = h.median().unwrap() as f64;
        assert!((p50 / 5_000.0 - 1.0).abs() < 0.10, "p50 estimate {p50}");
    }

    #[test]
    fn buckets_are_monotone() {
        let mut prev = 0;
        for v in (0..200_000u32).step_by(997) {
            let b = Histogram::bucket_of(v);
            assert!(b >= prev);
            prev = b;
            assert!(Histogram::bucket_floor(b) <= v.max(1));
        }
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..100 {
            a.record(v);
            b.record(v + 500);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert!(a.quantile(0.9).unwrap() >= 500);
        assert!(a.quantile(0.1).unwrap() < 100);
    }
}
