//! Structured simulator events and the flight-recorder hook.
//!
//! The engine emits one [`SimEvent`] per interesting state transition
//! (injection, header link traversal, virtual-channel allocation, blocked
//! arbitration, delivery, drop, reconfiguration) to an attached
//! [`Recorder`]. Recording is strictly *observational*: every hook fires
//! after the engine's own bookkeeping, passes copies of already-computed
//! values, and never touches the RNG — a run with a recorder attached is
//! bit-exact with the same run without one (proptested in
//! `tests/observability.rs`). With no recorder attached each hook costs a
//! single `Option` branch.
//!
//! The concrete bounded ring-buffer recorder, interval samplers and
//! deadlock forensics live in the `irnet-obs` crate; this module only
//! defines the event vocabulary so the simulator does not depend on its
//! own observers.

use irnet_topology::{ChannelId, NodeId};

/// One structured simulator event, stamped with the clock it occurred on.
///
/// `pkt` is the engine's packet id (dense, per-run). `channel` is a
/// physical channel id of the communication graph; `vc` the virtual
/// channel within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// A packet entered its source queue.
    Inject {
        /// Clock of the event.
        cycle: u32,
        /// Packet id.
        pkt: u32,
        /// Source switch.
        src: NodeId,
        /// Destination switch.
        dst: NodeId,
        /// Packet length in flits.
        len: u32,
    },
    /// A header flit traversed a physical link (entered the downstream
    /// input FIFO).
    HeaderAdvance {
        /// Clock of the event.
        cycle: u32,
        /// Packet id.
        pkt: u32,
        /// Physical channel traversed.
        channel: ChannelId,
        /// Virtual channel within it.
        vc: u32,
    },
    /// A header claimed an output virtual channel at a switch.
    VcAlloc {
        /// Clock of the event.
        cycle: u32,
        /// Packet id.
        pkt: u32,
        /// Physical channel claimed.
        channel: ChannelId,
        /// Virtual channel within it.
        vc: u32,
    },
    /// A header spent this cycle blocked in arbitration at `node`.
    Block {
        /// Clock of the event.
        cycle: u32,
        /// Packet id.
        pkt: u32,
        /// Switch where the header is waiting.
        node: NodeId,
        /// Consecutive cycles this header has now been blocked.
        waited: u32,
    },
    /// A tail flit was delivered: the packet left the network.
    Eject {
        /// Clock of the event.
        cycle: u32,
        /// Packet id.
        pkt: u32,
        /// Delivering switch (the packet's destination).
        node: NodeId,
        /// Clocks from generation to tail delivery.
        latency: u32,
    },
    /// A packet was destroyed by a fault path (dead destination, stranded
    /// route, or a reconfiguration cut).
    Drop {
        /// Clock of the event.
        cycle: u32,
        /// Packet id.
        pkt: u32,
        /// Buffered flits of the packet purged from the network.
        flits_lost: u32,
    },
    /// A reconfiguration epoch was applied (resources revived and/or
    /// died, tables swapped). A pure down-transition has zero revived
    /// counts; a pure up-transition (link recovery) zero dead counts.
    EpochSwap {
        /// Clock of the event.
        cycle: u32,
        /// Epochs applied so far, counting this one.
        epoch: u32,
        /// Channels killed by this epoch.
        dead_channels: u32,
        /// Switches killed by this epoch.
        dead_nodes: u32,
        /// Previously-dead channels re-enabled by this epoch.
        revived_channels: u32,
        /// Previously-dead switches re-enabled by this epoch.
        revived_nodes: u32,
    },
}

impl SimEvent {
    /// The clock the event occurred on.
    pub fn cycle(&self) -> u32 {
        match *self {
            SimEvent::Inject { cycle, .. }
            | SimEvent::HeaderAdvance { cycle, .. }
            | SimEvent::VcAlloc { cycle, .. }
            | SimEvent::Block { cycle, .. }
            | SimEvent::Eject { cycle, .. }
            | SimEvent::Drop { cycle, .. }
            | SimEvent::EpochSwap { cycle, .. } => cycle,
        }
    }

    /// The event kind as the snake_case tag used in JSONL exports.
    pub fn kind(&self) -> &'static str {
        match self {
            SimEvent::Inject { .. } => "inject",
            SimEvent::HeaderAdvance { .. } => "header_advance",
            SimEvent::VcAlloc { .. } => "vc_alloc",
            SimEvent::Block { .. } => "block",
            SimEvent::Eject { .. } => "eject",
            SimEvent::Drop { .. } => "drop",
            SimEvent::EpochSwap { .. } => "epoch_swap",
        }
    }
}

/// A sink for [`SimEvent`]s, attached with
/// [`Simulator::attach_recorder`](crate::Simulator::attach_recorder).
///
/// Implementations must not assume events arrive in cycle order across
/// kinds within one clock (the engine's pipeline stages run link → eject →
/// crossbar), but cycle stamps are monotonically non-decreasing.
pub trait Recorder {
    /// Consumes one event.
    fn record(&mut self, event: &SimEvent);
}

/// One worm that cannot advance, as captured by
/// [`Simulator::blocked_worms`](crate::Simulator::blocked_worms) for
/// deadlock forensics: the channels its flits occupy (`holds`) and the
/// channels its header is waiting for (`wants`).
///
/// The waits-for graph over all blocked worms (edges `held → wanted`) is
/// the runtime analogue of the static channel dependency graph; a cycle in
/// it is a genuine circular wait; an acyclic graph with non-empty `wants`
/// points at a dead or permanently-owned resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedWorm {
    /// Packet id of the worm.
    pub pkt: u32,
    /// Source switch.
    pub src: NodeId,
    /// Destination switch.
    pub dst: NodeId,
    /// Switch where the head is stuck.
    pub node: NodeId,
    /// Input channel the head occupies (`None` for a source injection
    /// port).
    pub input_channel: Option<ChannelId>,
    /// Physical channels currently occupied by this worm's flits or
    /// claimed by its route reservations.
    pub holds: Vec<ChannelId>,
    /// Channels the stuck head could legally claim next (empty when the
    /// head is waiting for ejection or for space on its claimed channel —
    /// then `wants` is that claimed channel).
    pub wants: Vec<ChannelId>,
    /// True when the head is waiting for the local ejection port.
    pub wants_ejection: bool,
    /// Consecutive cycles the head has been blocked in arbitration (zero
    /// for worms stalled behind their own claimed channel).
    pub blocked_cycles: u32,
}
