use irnet_topology::NodeId;
use rand::Rng;

/// The packet arrival process at each node.
///
/// The paper uses a Bernoulli process (a packet starts each cycle with a
/// fixed probability). The on/off (bursty) process is provided for
/// sensitivity studies: sources alternate between an *on* state, where
/// they inject at `burst_rate × base rate`, and an *off* state where they
/// are silent, with geometric sojourn times chosen so the long-run offered
/// load equals the configured injection rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Independent Bernoulli trials each cycle (the paper's model).
    Bernoulli,
    /// Markov-modulated on/off source. `mean_burst` is the average number
    /// of cycles an on-period lasts; `burstiness` (> 1) is the ratio of
    /// the on-state injection rate to the long-run rate.
    OnOff {
        /// Average on-period length in cycles.
        mean_burst: u32,
        /// Ratio of on-state rate to the long-run rate (> 1).
        burstiness: f64,
    },
}

impl ArrivalProcess {
    /// Per-cycle state update + arrival decision for one node.
    /// `state` is the node's on/off flag (unused by Bernoulli);
    /// `p` is the long-run per-cycle packet probability.
    pub fn arrives(self, rng: &mut impl Rng, state: &mut bool, p: f64) -> bool {
        match self {
            ArrivalProcess::Bernoulli => p > 0.0 && rng.gen_bool(p.min(1.0)),
            ArrivalProcess::OnOff {
                mean_burst,
                burstiness,
            } => {
                let b = burstiness.max(1.0 + 1e-9);
                // Duty cycle keeps the long-run rate at `p`:
                // on-fraction = 1/b, on-rate = p*b.
                let on_fraction = 1.0 / b;
                let leave_on = 1.0 / mean_burst.max(1) as f64;
                // Off sojourn chosen so stationary on-probability = 1/b.
                let leave_off = leave_on * on_fraction / (1.0 - on_fraction);
                if *state {
                    if rng.gen_bool(leave_on.min(1.0)) {
                        *state = false;
                    }
                } else if rng.gen_bool(leave_off.min(1.0)) {
                    *state = true;
                }
                *state && p > 0.0 && rng.gen_bool((p * b).min(1.0))
            }
        }
    }
}

/// Destination-selection patterns. The paper evaluates uniform traffic;
/// the other patterns are provided for the sensitivity studies in
/// `irnet-bench` and for users of the library.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficPattern {
    /// Uniformly random destination, excluding the source (paper §5).
    Uniform,
    /// A fraction `hot_fraction` of packets target the single node
    /// `hot_node`; the rest are uniform.
    Hotspot {
        /// The hot destination.
        hot_node: NodeId,
        /// Fraction of packets sent to it.
        hot_fraction: f64,
    },
    /// Destination = bit-complement of the source id (within `0..n`).
    BitComplement,
    /// Destination = `(source + n/2) mod n` ("transpose-like" fixed
    /// permutation for arbitrary node counts).
    Opposite,
    /// Destination chosen uniformly among nodes within id-distance
    /// `radius` of the source (wrapping), modelling locality.
    Local {
        /// Maximum id-distance of the destination.
        radius: u32,
    },
}

impl TrafficPattern {
    /// Samples a destination for a packet injected at `src` in a network of
    /// `n` nodes. Never returns `src` (self-traffic does not enter the
    /// network).
    pub fn pick_dest(self, rng: &mut impl Rng, src: NodeId, n: u32) -> NodeId {
        debug_assert!(n >= 2);
        match self {
            TrafficPattern::Uniform => {
                let d = rng.gen_range(0..n - 1);
                if d >= src {
                    d + 1
                } else {
                    d
                }
            }
            TrafficPattern::Hotspot {
                hot_node,
                hot_fraction,
            } => {
                if hot_node != src && rng.gen_bool(hot_fraction.clamp(0.0, 1.0)) {
                    hot_node
                } else {
                    TrafficPattern::Uniform.pick_dest(rng, src, n)
                }
            }
            TrafficPattern::BitComplement => {
                let bits = 32 - (n - 1).leading_zeros();
                let d = (!src) & ((1u32 << bits) - 1);
                if d >= n || d == src {
                    TrafficPattern::Uniform.pick_dest(rng, src, n)
                } else {
                    d
                }
            }
            TrafficPattern::Opposite => {
                let d = (src + n / 2) % n;
                if d == src {
                    TrafficPattern::Uniform.pick_dest(rng, src, n)
                } else {
                    d
                }
            }
            TrafficPattern::Local { radius } => {
                let r = radius.max(1).min(n - 1);
                let offset = rng.gen_range(1..=2 * r);
                let d = (src + n + offset - r - if offset > r { 1 } else { 0 }) % n;
                if d == src {
                    (d + 1) % n
                } else {
                    d
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(99)
    }

    #[test]
    fn uniform_never_picks_source_and_covers_all() {
        let mut rng = rng();
        let n = 8;
        let mut seen = vec![false; n as usize];
        for _ in 0..1000 {
            let d = TrafficPattern::Uniform.pick_dest(&mut rng, 3, n);
            assert_ne!(d, 3);
            assert!(d < n);
            seen[d as usize] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert_eq!(covered, 7);
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let mut rng = rng();
        let n = 4;
        let mut counts = [0u32; 4];
        for _ in 0..30_000 {
            counts[TrafficPattern::Uniform.pick_dest(&mut rng, 0, n) as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        for &c in &counts[1..] {
            assert!((8_000..12_000).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let mut rng = rng();
        let pat = TrafficPattern::Hotspot {
            hot_node: 5,
            hot_fraction: 0.5,
        };
        let mut hot = 0;
        for _ in 0..10_000 {
            if pat.pick_dest(&mut rng, 1, 16) == 5 {
                hot += 1;
            }
        }
        // 50% direct + uniform share.
        assert!(hot > 4_500, "only {hot} hot picks");
    }

    #[test]
    fn patterns_never_return_source() {
        let mut rng = rng();
        let pats = [
            TrafficPattern::Uniform,
            TrafficPattern::Hotspot {
                hot_node: 0,
                hot_fraction: 0.9,
            },
            TrafficPattern::BitComplement,
            TrafficPattern::Opposite,
            TrafficPattern::Local { radius: 2 },
        ];
        for pat in pats {
            for n in [2u32, 3, 7, 16] {
                for src in 0..n {
                    for _ in 0..50 {
                        let d = pat.pick_dest(&mut rng, src, n);
                        assert_ne!(d, src, "{pat:?} n={n} src={src}");
                        assert!(d < n);
                    }
                }
            }
        }
    }

    #[test]
    fn bernoulli_long_run_rate_matches_p() {
        let mut rng = rng();
        let mut state = false;
        let mut hits = 0u32;
        for _ in 0..100_000 {
            if ArrivalProcess::Bernoulli.arrives(&mut rng, &mut state, 0.02) {
                hits += 1;
            }
        }
        assert!(
            (1_700..=2_300).contains(&hits),
            "Bernoulli rate off: {hits}"
        );
    }

    #[test]
    fn on_off_long_run_rate_matches_p() {
        let mut rng = rng();
        let proc = ArrivalProcess::OnOff {
            mean_burst: 50,
            burstiness: 4.0,
        };
        let mut state = false;
        let mut hits = 0u32;
        const N: u32 = 400_000;
        for _ in 0..N {
            if proc.arrives(&mut rng, &mut state, 0.02) {
                hits += 1;
            }
        }
        let rate = hits as f64 / N as f64;
        assert!(
            (rate / 0.02 - 1.0).abs() < 0.15,
            "on/off long-run rate {rate:.4}"
        );
    }

    #[test]
    fn on_off_is_burstier_than_bernoulli() {
        // Compare the variance of per-window arrival counts.
        let window = 64;
        let windows = 4_000;
        let count_var = |proc: ArrivalProcess| {
            let mut rng = rng();
            let mut state = false;
            let mut counts = Vec::with_capacity(windows);
            for _ in 0..windows {
                let mut c = 0u32;
                for _ in 0..window {
                    if proc.arrives(&mut rng, &mut state, 0.05) {
                        c += 1;
                    }
                }
                counts.push(c as f64);
            }
            let mean = counts.iter().sum::<f64>() / counts.len() as f64;
            counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64
        };
        let bern = count_var(ArrivalProcess::Bernoulli);
        let burst = count_var(ArrivalProcess::OnOff {
            mean_burst: 100,
            burstiness: 5.0,
        });
        assert!(
            burst > 1.5 * bern,
            "on/off variance {burst:.2} vs Bernoulli {bern:.2}"
        );
    }

    #[test]
    fn opposite_is_a_fixed_permutation_for_even_n() {
        let mut rng = rng();
        for src in 0..8u32 {
            let d = TrafficPattern::Opposite.pick_dest(&mut rng, src, 8);
            assert_eq!(d, (src + 4) % 8);
        }
    }
}
