use crate::active::ActiveSet;
use crate::config::{EngineCore, InjectionSampling, RouteChoice, SimConfig};
use crate::hist::Histogram;
use crate::record::{BlockedWorm, Recorder, SimEvent};
use crate::stats::SimStats;
use irnet_topology::{ChannelId, CommGraph, NodeId};
use irnet_turns::{RoutingTables, INJECTION_SLOT};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Route sentinel: no output assigned yet.
const ROUTE_NONE: u32 = u32::MAX;
/// Route sentinel: deliver to the local processor.
const ROUTE_EJECT: u32 = u32::MAX - 1;
/// Owner sentinel: virtual channel is free.
const FREE: u32 = u32::MAX;
/// Owner sentinel: virtual channel died in a reconfiguration epoch and can
/// never be claimed again.
const DEAD: u32 = u32::MAX - 2;
/// No pending oblivious port.
const NO_PORT: u8 = u8::MAX;
/// `route_pkt` sentinel: no packet holds this input's route.
const NO_PKT: u32 = u32::MAX;

/// One flit in flight. `time` is the cycle the flit entered its current
/// stage; a flit only advances when `time < now`, which enforces the
/// one-stage-per-clock pipeline.
#[derive(Debug, Clone, Copy)]
struct Flit {
    pkt: u32,
    seq: u32,
    time: u32,
}

/// Arena filler for never-read slots.
const NO_FLIT: Flit = Flit {
    pkt: 0,
    seq: 0,
    time: 0,
};

#[derive(Debug, Clone, Copy)]
struct Packet {
    src: NodeId,
    dst: NodeId,
    gen_time: u32,
    len: u32,
    /// Non-minimal detours taken so far (bounded by `max_detours`).
    detours: u32,
}

/// One scheduled reconfiguration: at `cycle` the listed revived channels
/// and nodes come back to life, the listed dead ones die, every packet
/// holding a dead resource is dropped, and all further arbitration
/// retargets `tables` (built over the surviving sub-network, e.g. by
/// `RoutingTables::build_masked`).
///
/// Contract: when a node is listed dead, the channels of all its incident
/// links must be listed dead too (a repair derived from a switch fault
/// always satisfies this). Revived elements must currently be dead —
/// their buffers are empty by construction, because the down-swap that
/// killed them dropped every resident flit and the `DEAD` owner sentinel
/// blocked any re-claim, so a revival never materializes flits. `tables`
/// must cover the same network as the simulator's communication graph.
#[derive(Debug, Clone)]
pub struct FaultEpoch<'a> {
    /// Activation cycle (applied at the start of the first step at or
    /// after this clock).
    pub cycle: u32,
    /// Channels that die at activation.
    pub dead_channels: Vec<ChannelId>,
    /// Switches that die at activation.
    pub dead_nodes: Vec<NodeId>,
    /// Previously-dead channels that come back at activation (empty).
    pub revived_channels: Vec<ChannelId>,
    /// Previously-dead switches that come back at activation.
    pub revived_nodes: Vec<NodeId>,
    /// Routing tables of the repaired network.
    pub tables: &'a RoutingTables,
}

/// The wormhole network simulator. See the crate docs for the model.
///
/// Two scheduling cores share every data structure and mutation helper
/// (see [`EngineCore`]): the default active-set core iterates per-stage
/// worklists of live entries, the dense reference core scans the whole
/// network. Both visit live entries in the same order, so their outputs
/// are bit-exact — asserted by the differential tests below and in
/// `tests/engine_equiv.rs`.
pub struct Simulator<'a> {
    cg: &'a CommGraph,
    tables: &'a RoutingTables,
    cfg: SimConfig,
    rng: ChaCha8Rng,

    now: u32,
    vcs: u32,
    num_invc: usize,
    num_inputs: usize,
    /// FIFO depth in flits (hoisted out of `cfg` for the hot path).
    depth: usize,
    /// Per-cycle packet-start probability
    /// (`injection_rate / packet_len`, clamped), hoisted out of
    /// [`Simulator::inject`]. Kept in sync by
    /// [`Simulator::set_injection_rate`].
    inject_p: f64,

    packets: Vec<Packet>,
    /// Flat flit arena: slot `i * depth + k` holds flit `k` of input `i`'s
    /// ring buffer. Replaces one `VecDeque` allocation per (channel, vc).
    fifo: Vec<Flit>,
    /// Ring-buffer head position per input FIFO.
    fifo_head: Vec<u32>,
    /// Occupancy per input FIFO.
    fifo_len: Vec<u32>,
    /// Current route per input (physical in-vcs then injection per node).
    route: Vec<u32>,
    /// Packet holding each input's route (`NO_PKT` when `route` is
    /// `ROUTE_NONE`); lets a reconfiguration identify cut worms even when
    /// no flit of theirs is currently buffered at the input.
    route_pkt: Vec<u32>,
    /// Oblivious pending port per input.
    pending_port: Vec<u8>,
    /// Consecutive cycles the current header at each input has been
    /// blocked (drives the misrouting patience threshold).
    blocked: Vec<u32>,
    /// Owner input of each output (physical channel, vc); `FREE` if none.
    owner: Vec<u32>,
    /// Output staging register per (physical channel, vc).
    staged: Vec<Option<Flit>>,
    /// Round-robin pointer per physical channel for link arbitration.
    rr: Vec<u32>,
    /// Ejection staging register and owner, per node.
    eject_staged: Vec<Option<Flit>>,
    eject_owner: Vec<u32>,
    /// Source queues: pending packet ids per node, plus flits already sent
    /// of the head packet.
    src_queue: Vec<VecDeque<u32>>,
    src_sent: Vec<u32>,
    /// On/off state per source (used by the bursty arrival process).
    src_on: Vec<bool>,

    /// Inputs with at least one queued flit (non-empty FIFO, or a source
    /// with a pending packet). Everything the crossbar stage can act on.
    active_in: ActiveSet,
    /// Occupied staging registers per physical channel (vcs <= 8).
    staged_count: Vec<u8>,
    /// Channels with `staged_count > 0` — the link stage's worklist.
    staged_active: ActiveSet,
    /// Nodes with an occupied ejection register.
    eject_active: ActiveSet,
    /// Reusable iteration buffer (kept allocated across cycles).
    scratch: Vec<u32>,

    /// Per-source next scheduled arrival, keyed `(cycle, node)` — only
    /// used by [`InjectionSampling::Geometric`].
    next_arrival: BinaryHeap<Reverse<(u32, NodeId)>>,

    /// Attached structured-event sink ([`Simulator::attach_recorder`]);
    /// `None` by default, so the hot path pays one branch per hook when
    /// recording is disabled. Observation is read-only: hooks fire after
    /// the engine's own bookkeeping and never touch the RNG.
    recorder: Option<&'a mut (dyn Recorder + 'a)>,

    /// Scheduled reconfiguration epochs, sorted by activation cycle;
    /// `next_reconfig` indexes the first not yet applied.
    reconfigs: Vec<FaultEpoch<'a>>,
    next_reconfig: usize,
    /// Channels killed by an applied epoch.
    dead_channel: Vec<bool>,
    /// Switches killed by an applied epoch.
    node_dead: Vec<bool>,
    dropped_flits: u64,
    dropped_packets: u64,
    reconfig_epochs: u32,

    /// Flits buffered in FIFOs and staging registers.
    buffered_flits: u64,
    /// Flits that ever entered the network (left a source queue), over
    /// the whole run including warm-up. With `delivered_flits_total` and
    /// `dropped_flits` this closes the conservation identity
    /// `injected == delivered + dropped + buffered` — checked across
    /// every reconfiguration barrier (see [`Simulator::flits_conserved`]).
    injected_flits_total: u64,
    /// Flits handed to a local processor, over the whole run including
    /// warm-up (unlike the measurement-window `flits_delivered`).
    delivered_flits_total: u64,
    /// Packets not yet fully delivered (includes queued ones).
    live_packets: u64,
    last_progress: u32,

    // Measurement (only touched when `now >= warmup_cycles`).
    flits_delivered: u64,
    packets_delivered: u64,
    latency_sum: u64,
    latency_max: u32,
    latency_hist: Histogram,
    packets_generated: u64,
    channel_flits: Vec<u64>,
    node_flits_delivered: Vec<u64>,
    node_packets_generated: Vec<u64>,
    header_block_cycles: u64,
    buffered_flit_cycles: u64,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator over a communication graph and its routing
    /// tables. Deterministic per `seed`.
    pub fn new(
        cg: &'a CommGraph,
        tables: &'a RoutingTables,
        cfg: SimConfig,
        seed: u64,
    ) -> Simulator<'a> {
        cfg.validate();
        assert_eq!(
            cg.num_nodes(),
            tables.num_nodes(),
            "routing tables belong to a different network"
        );
        let n = cg.num_nodes() as usize;
        let nch = cg.num_channels() as usize;
        let vcs = cfg.virtual_channels;
        let num_invc = nch * vcs as usize;
        let num_inputs = num_invc + n;
        let depth = cfg.buffer_depth as usize;
        let inject_p = (cfg.injection_rate / cfg.packet_len as f64).clamp(0.0, 1.0);
        debug_assert!(inject_p.is_finite(), "injection probability not finite");
        let mut sim = Simulator {
            cg,
            tables,
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
            now: 0,
            vcs,
            num_invc,
            num_inputs,
            depth,
            inject_p,
            packets: Vec::new(),
            fifo: vec![NO_FLIT; num_invc * depth],
            fifo_head: vec![0; num_invc],
            fifo_len: vec![0; num_invc],
            route: vec![ROUTE_NONE; num_inputs],
            route_pkt: vec![NO_PKT; num_inputs],
            pending_port: vec![NO_PORT; num_inputs],
            blocked: vec![0; num_inputs],
            owner: vec![FREE; num_invc],
            staged: vec![None; num_invc],
            rr: vec![0; nch],
            eject_staged: vec![None; n],
            eject_owner: vec![FREE; n],
            src_queue: vec![VecDeque::new(); n],
            src_sent: vec![0; n],
            src_on: vec![false; n],
            active_in: ActiveSet::new(num_inputs),
            staged_count: vec![0; nch],
            staged_active: ActiveSet::new(nch),
            eject_active: ActiveSet::new(n),
            scratch: Vec::with_capacity(64),
            next_arrival: BinaryHeap::new(),
            recorder: None,
            reconfigs: Vec::new(),
            next_reconfig: 0,
            dead_channel: vec![false; nch],
            node_dead: vec![false; n],
            dropped_flits: 0,
            dropped_packets: 0,
            reconfig_epochs: 0,
            buffered_flits: 0,
            injected_flits_total: 0,
            delivered_flits_total: 0,
            live_packets: 0,
            last_progress: 0,
            flits_delivered: 0,
            packets_delivered: 0,
            latency_sum: 0,
            latency_max: 0,
            latency_hist: Histogram::new(),
            packets_generated: 0,
            channel_flits: vec![0; nch],
            node_flits_delivered: vec![0; n],
            node_packets_generated: vec![0; n],
            header_block_cycles: 0,
            buffered_flit_cycles: 0,
        };
        sim.arm_geometric_arrivals();
        sim
    }

    /// Runs warm-up plus measurement and returns the collected statistics.
    pub fn run(mut self) -> SimStats {
        let deadlocked = self.run_in_place();
        self.into_stats(deadlocked)
    }

    /// [`Simulator::run`] with telemetry attached. The run itself is
    /// byte-identical to a plain [`Simulator::run`] — the registry is fed
    /// only after the final cycle (see
    /// [`crate::record_run_telemetry`]), so the per-cycle hot path never
    /// touches it.
    pub fn run_with_telemetry(self, tel: &irnet_telemetry::Telemetry) -> SimStats {
        let t0 = std::time::Instant::now();
        let stats = self.run();
        crate::record_run_telemetry(tel, &stats, t0.elapsed().as_secs_f64());
        stats
    }

    /// The watchdog loop behind [`Simulator::run`], usable without
    /// consuming the simulator: steps until the configured horizon and
    /// returns `true` if the stall watchdog fired first. The caller can
    /// then inspect the wedged state (e.g. [`Simulator::blocked_worms`])
    /// before finalizing with [`Simulator::finish_with`].
    pub fn run_in_place(&mut self) -> bool {
        let total = self.cfg.total_cycles();
        while self.now < total {
            self.step();
            if self.stalled() {
                return true;
            }
        }
        false
    }

    /// The watchdog predicate: live packets exist but nothing has moved
    /// for more than `deadlock_threshold` cycles.
    pub fn stalled(&self) -> bool {
        self.live_packets > 0 && self.now - self.last_progress > self.cfg.deadlock_threshold
    }

    /// Attaches a structured-event recorder. Recording is strictly
    /// observational — the run's statistics and RNG stream are bit-exact
    /// with and without a recorder (see `tests/observability.rs`).
    pub fn attach_recorder(&mut self, recorder: &'a mut (dyn Recorder + 'a)) {
        self.recorder = Some(recorder);
    }

    /// Manually enqueues one packet at `src` for `dst` (generated at the
    /// current clock), independent of the configured injection rate. Useful
    /// for trace-style workloads and controlled experiments. Returns the
    /// packet id.
    pub fn enqueue_packet(&mut self, src: NodeId, dst: NodeId) -> u32 {
        assert_ne!(src, dst, "self-traffic does not enter the network");
        assert!(src < self.cg.num_nodes() && dst < self.cg.num_nodes());
        let id = self.packets.len() as u32;
        self.packets.push(Packet {
            src,
            dst,
            gen_time: self.now,
            len: self.cfg.packet_len,
            detours: 0,
        });
        self.src_queue[src as usize].push_back(id);
        self.active_in.insert(self.num_invc + src as usize);
        self.live_packets += 1;
        if self.measuring() {
            self.packets_generated += 1;
            self.node_packets_generated[src as usize] += 1;
        }
        let (cycle, len) = (self.now, self.cfg.packet_len);
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.record(&SimEvent::Inject {
                cycle,
                pkt: id,
                src,
                dst,
                len,
            });
        }
        id
    }

    /// Changes the offered load mid-run, keeping the hoisted per-cycle
    /// packet probability (and, in geometric sampling mode, the scheduled
    /// arrivals) in sync. Use this instead of mutating the configuration.
    pub fn set_injection_rate(&mut self, rate: f64) {
        assert!(rate >= 0.0, "negative injection rate");
        self.cfg.injection_rate = rate;
        self.inject_p = (rate / self.cfg.packet_len as f64).clamp(0.0, 1.0);
        debug_assert!(
            self.inject_p.is_finite(),
            "injection probability not finite"
        );
        if self.cfg.injection_sampling == InjectionSampling::Geometric {
            self.next_arrival.clear();
            self.arm_geometric_arrivals();
        }
    }

    /// Schedules the first geometric arrival of every source (no-op in
    /// per-cycle sampling mode or at zero load).
    fn arm_geometric_arrivals(&mut self) {
        let n = self.cg.num_nodes();
        if self.cfg.injection_sampling != InjectionSampling::Geometric
            || self.inject_p == 0.0
            || n < 2
        {
            return;
        }
        for v in 0..n {
            let skip = geometric_skip(&mut self.rng, self.inject_p);
            self.next_arrival
                .push(Reverse((self.now.saturating_add(skip), v)));
        }
    }

    /// Advances the clock by one cycle (public stepping for custom loops;
    /// [`Simulator::run`] is the turnkey driver).
    pub fn tick(&mut self) {
        self.step();
    }

    /// Runs until every in-flight packet is delivered or `max_cycles` more
    /// cycles elapse; returns true if the network drained.
    pub fn drain(&mut self, max_cycles: u32) -> bool {
        for _ in 0..max_cycles {
            if self.live_packets == 0 {
                return true;
            }
            self.step();
        }
        self.live_packets == 0
    }

    /// Packets not yet fully delivered.
    pub fn live_packet_count(&self) -> u64 {
        self.live_packets
    }

    /// The current clock.
    pub fn now(&self) -> u32 {
        self.now
    }

    /// Finalizes the run and returns the statistics collected so far.
    pub fn finish(self) -> SimStats {
        self.into_stats(false)
    }

    /// Like [`Simulator::finish`], but records whether the watchdog
    /// aborted the run (pairs with [`Simulator::run_in_place`]).
    pub fn finish_with(self, deadlocked: bool) -> SimStats {
        self.into_stats(deadlocked)
    }

    /// The simulator's configuration (kept current by
    /// [`Simulator::set_injection_rate`]).
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Clock of the last flit movement — the watchdog's anchor.
    pub fn last_progress_cycle(&self) -> u32 {
        self.last_progress
    }

    /// Physical channels of the simulated communication graph.
    pub fn num_physical_channels(&self) -> u32 {
        self.cg.num_channels()
    }

    /// Flits currently buffered in FIFOs and staging registers.
    pub fn buffered_flit_count(&self) -> u64 {
        self.buffered_flits
    }

    /// Flits that ever entered the network (whole run, warm-up included).
    pub fn injected_flit_total(&self) -> u64 {
        self.injected_flits_total
    }

    /// Flits handed to a local processor (whole run, warm-up included).
    pub fn delivered_flit_total(&self) -> u64 {
        self.delivered_flits_total
    }

    /// Flits dropped by reconfiguration barriers so far.
    pub fn dropped_flit_total(&self) -> u64 {
        self.dropped_flits
    }

    /// The flit conservation identity: every flit that entered the
    /// network is delivered, dropped, or still buffered. Holds at every
    /// cycle boundary, including across up-transition barriers that
    /// re-enable previously dead channels (checked by `irnet soak`).
    pub fn flits_conserved(&self) -> bool {
        self.injected_flits_total
            == self.delivered_flits_total + self.dropped_flits + self.buffered_flits
    }

    /// Worms currently holding a claimed route (headers that won
    /// arbitration and have not yet streamed their tail past it).
    pub fn active_worm_count(&self) -> u32 {
        self.route.iter().filter(|&&r| r != ROUTE_NONE).count() as u32
    }

    /// Writes the current per-channel buffer occupancy (flits in input
    /// FIFOs plus staging registers, summed over virtual channels) into
    /// `out`, resized to the channel count. Read-only snapshot for
    /// interval samplers.
    pub fn channel_occupancy(&self, out: &mut Vec<u32>) {
        let nch = self.cg.num_channels() as usize;
        out.clear();
        out.resize(nch, 0);
        let vcs = self.vcs as usize;
        for idx in 0..self.num_invc {
            let c = idx / vcs;
            out[c] += self.fifo_len[idx];
            if self.staged[idx].is_some() {
                out[c] += 1;
            }
        }
    }

    /// Cumulative link traversals per channel within the measurement
    /// window so far (all zeros during warm-up).
    pub fn channel_flits_so_far(&self) -> &[u64] {
        &self.channel_flits
    }

    /// Cumulative flits delivered per node within the measurement window
    /// so far (all zeros during warm-up).
    pub fn node_flits_so_far(&self) -> &[u64] {
        &self.node_flits_delivered
    }

    /// Channels killed by applied reconfiguration epochs.
    pub fn dead_channel_ids(&self) -> Vec<ChannelId> {
        self.dead_channel
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(c, _)| c as ChannelId)
            .collect()
    }

    /// Captures every worm that cannot advance right now — the raw
    /// material of the deadlock forensics report (`irnet-obs`).
    ///
    /// A worm is blocked when its head is stuck in arbitration
    /// (`blocked >= 1`) or when its claimed output's staging register is
    /// occupied (downstream backpressure). `holds` is every physical
    /// channel occupied by the worm's flits or claimed by its
    /// reservations; `wants` the channels its head could legally claim
    /// next (for backpressured worms, the claimed channel it needs space
    /// on). Read-only and allocation-heavy — call it after the watchdog
    /// fires, not per cycle.
    pub fn blocked_worms(&self) -> Vec<BlockedWorm> {
        use std::collections::BTreeMap;
        let vcs = self.vcs as usize;
        let ch = self.cg.channels();
        // Channels each live packet currently occupies: flits buffered in
        // an input FIFO or staged on the channel, plus claimed routes.
        let mut holds: BTreeMap<u32, Vec<ChannelId>> = BTreeMap::new();
        for idx in 0..self.num_invc {
            let c = (idx / vcs) as ChannelId;
            let base = idx * self.depth;
            let head = self.fifo_head[idx] as usize;
            for k in 0..self.fifo_len[idx] as usize {
                let pkt = self.fifo[base + (head + k) % self.depth].pkt;
                holds.entry(pkt).or_default().push(c);
            }
            if let Some(f) = self.staged[idx] {
                holds.entry(f.pkt).or_default().push(c);
            }
        }
        for i in 0..self.num_inputs {
            let r = self.route[i];
            if r != ROUTE_NONE && r != ROUTE_EJECT {
                holds
                    .entry(self.route_pkt[i])
                    .or_default()
                    .push(r / vcs as u32);
            }
        }
        for hs in holds.values_mut() {
            hs.sort_unstable();
            hs.dedup();
        }
        let mut out = Vec::new();
        for i in 0..self.num_inputs {
            let Some(flit) = self.peek_head(i) else {
                continue;
            };
            let pkt = self.packets[flit.pkt as usize];
            let v = self.input_node(i);
            let r = self.route[i];
            let mut wants: Vec<ChannelId> = Vec::new();
            let mut wants_ejection = false;
            if r == ROUTE_EJECT {
                // The ejection register drains unconditionally every
                // clock; a head routed to ejection can never wedge.
                continue;
            } else if r != ROUTE_NONE {
                // Claimed route, but the staging register is occupied:
                // waiting for space on the channel it already owns.
                if self.staged[r as usize].is_none() {
                    continue;
                }
                wants.push(r / vcs as u32);
            } else {
                // Header mid-arbitration. Only count it once it has
                // actually waited a full arbitration attempt.
                if flit.seq != 0 || self.blocked[i] == 0 {
                    continue;
                }
                if v == pkt.dst {
                    wants_ejection = true;
                } else {
                    let slot = if i < self.num_invc {
                        ch.in_port((i / vcs) as u32) as usize + 1
                    } else {
                        INJECTION_SLOT
                    };
                    let mut mask = self.tables.candidates(pkt.dst, v, slot);
                    if mask == 0 {
                        mask = self.tables.candidates_any(pkt.dst, v, slot);
                    }
                    while mask != 0 {
                        let p = mask.trailing_zeros() as u8;
                        mask &= mask - 1;
                        wants.push(ch.output_at(v, p));
                    }
                }
            }
            out.push(BlockedWorm {
                pkt: flit.pkt,
                src: pkt.src,
                dst: pkt.dst,
                node: v,
                input_channel: (i < self.num_invc).then(|| (i / vcs) as ChannelId),
                holds: holds.get(&flit.pkt).cloned().unwrap_or_default(),
                wants,
                wants_ejection,
                blocked_cycles: self.blocked[i],
            });
        }
        out
    }

    fn into_stats(self, deadlocked: bool) -> SimStats {
        SimStats {
            cycles: self
                .cfg
                .measure_cycles
                .min(self.now.saturating_sub(self.cfg.warmup_cycles))
                .max(1),
            num_nodes: self.cg.num_nodes(),
            flits_delivered: self.flits_delivered,
            packets_delivered: self.packets_delivered,
            latency_sum: self.latency_sum,
            latency_max: self.latency_max,
            latency_hist: self.latency_hist,
            packets_generated: self.packets_generated,
            channel_flits: self.channel_flits,
            node_flits_delivered: self.node_flits_delivered,
            node_packets_generated: self.node_packets_generated,
            header_block_cycles: self.header_block_cycles,
            buffered_flit_cycles: self.buffered_flit_cycles,
            deadlocked,
            flits_in_flight: self.buffered_flits,
            dropped_flits: self.dropped_flits,
            dropped_packets: self.dropped_packets,
            reconfig_epochs: self.reconfig_epochs,
            last_progress: self.last_progress,
            flits_injected_total: self.injected_flits_total,
            flits_delivered_total: self.delivered_flits_total,
        }
    }

    #[inline]
    fn measuring(&self) -> bool {
        self.now >= self.cfg.warmup_cycles
    }

    /// Schedules a reconfiguration epoch. Epochs may be scheduled in any
    /// order and at any time before their activation cycle; each is applied
    /// at the start of the first step at or after `epoch.cycle`.
    pub fn schedule_reconfig(&mut self, epoch: FaultEpoch<'a>) {
        assert_eq!(
            epoch.tables.num_nodes(),
            self.cg.num_nodes(),
            "epoch tables belong to a different network"
        );
        let live = &self.reconfigs[self.next_reconfig..];
        let pos = self.next_reconfig + live.partition_point(|e| e.cycle <= epoch.cycle);
        self.reconfigs.insert(pos, epoch);
    }

    /// Applies every epoch whose activation cycle has been reached.
    fn apply_due_reconfigs(&mut self) {
        while self.next_reconfig < self.reconfigs.len()
            && self.reconfigs[self.next_reconfig].cycle <= self.now
        {
            let epoch = self.reconfigs[self.next_reconfig].clone();
            self.next_reconfig += 1;
            self.apply_reconfig(&epoch);
        }
    }

    /// Applies one reconfiguration epoch: re-enables the revived
    /// resources, marks the dead ones, drops every packet holding a dead
    /// resource, retires the dead virtual channels, and swaps in the
    /// repaired routing tables.
    fn apply_reconfig(&mut self, epoch: &FaultEpoch<'a>) {
        let vcs = self.vcs as usize;
        // Revivals first (an element can in principle flip down and up in
        // one barrier when epochs coalesce; deaths must win). A revived
        // channel comes back *empty*: the down-swap that killed it dropped
        // every resident flit and its `DEAD` owners blocked any re-claim
        // since, so flipping the owners back to `FREE` cannot materialize
        // or orphan a flit — asserted below via the conservation identity.
        for &c in &epoch.revived_channels {
            debug_assert!(
                self.dead_channel[c as usize],
                "revived channel {c} was not dead"
            );
            self.dead_channel[c as usize] = false;
            for vc in 0..vcs {
                let idx = c as usize * vcs + vc;
                debug_assert!(self.staged[idx].is_none(), "revived channel {c} not empty");
                debug_assert_eq!(self.fifo_len[idx], 0, "revived channel {c} not empty");
                if self.owner[idx] == DEAD {
                    self.owner[idx] = FREE;
                }
            }
        }
        for &v in &epoch.revived_nodes {
            debug_assert!(self.node_dead[v as usize], "revived node {v} was not dead");
            self.node_dead[v as usize] = false;
            if self.eject_owner[v as usize] == DEAD {
                self.eject_owner[v as usize] = FREE;
            }
            // The processor restarts in the quiescent state.
            self.src_on[v as usize] = false;
            if self.cfg.injection_sampling == InjectionSampling::Geometric
                && self.inject_p > 0.0
                && self.cg.num_nodes() >= 2
            {
                // Its arrival stream ended at death (dead arrivals are
                // dropped without re-arm): schedule a fresh first arrival.
                let skip = geometric_skip(&mut self.rng, self.inject_p);
                self.next_arrival
                    .push(Reverse((self.now.saturating_add(1 + skip), v)));
            }
        }
        for &c in &epoch.dead_channels {
            self.dead_channel[c as usize] = true;
        }
        for &v in &epoch.dead_nodes {
            self.node_dead[v as usize] = true;
        }
        // A packet dies when it holds a dead resource: a flit staged on or
        // buffered past a dead channel, a claimed route from or into a dead
        // channel, an ejection in progress at a dead node, or a source-queue
        // slot at a dead node. Packets merely *destined* to a dead node are
        // dropped lazily when their header next arbitrates.
        let mut drops: Vec<u32> = Vec::new();
        for &c in &epoch.dead_channels {
            for vc in 0..vcs {
                let idx = c as usize * vcs + vc;
                if let Some(f) = self.staged[idx] {
                    drops.push(f.pkt);
                }
                let head = self.fifo_head[idx] as usize;
                for k in 0..self.fifo_len[idx] as usize {
                    drops.push(self.fifo[idx * self.depth + (head + k) % self.depth].pkt);
                }
            }
        }
        for i in 0..self.num_inputs {
            let r = self.route[i];
            if r == ROUTE_NONE {
                continue;
            }
            let from_dead = i < self.num_invc && self.dead_channel[i / vcs];
            let to_dead = r != ROUTE_EJECT && self.dead_channel[r as usize / vcs];
            let eject_dead = r == ROUTE_EJECT && self.node_dead[self.input_node(i) as usize];
            if from_dead || to_dead || eject_dead {
                drops.push(self.route_pkt[i]);
            }
        }
        for &v in &epoch.dead_nodes {
            drops.extend(self.src_queue[v as usize].iter().copied());
            if let Some(f) = self.eject_staged[v as usize] {
                drops.push(f.pkt);
            }
        }
        drops.sort_unstable();
        drops.dedup();
        for pkt in drops {
            self.drop_packet(pkt);
        }
        // Dead resources can never be claimed again.
        for &c in &epoch.dead_channels {
            for vc in 0..vcs {
                self.owner[c as usize * vcs + vc] = DEAD;
            }
        }
        for &v in &epoch.dead_nodes {
            self.eject_owner[v as usize] = DEAD;
        }
        self.tables = epoch.tables;
        self.reconfig_epochs += 1;
        // No flit materialized or vanished across the barrier: drops were
        // accounted flit-by-flit and revivals re-enable empty resources.
        debug_assert!(
            self.flits_conserved(),
            "flit conservation violated across epoch barrier at cycle {}",
            self.now
        );
        // The epoch barrier counts as progress: the repaired network gets a
        // full watchdog window before a stall is declared.
        self.note_progress();
        let (cycle, applied) = (self.now, self.reconfig_epochs);
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.record(&SimEvent::EpochSwap {
                cycle,
                epoch: applied,
                dead_channels: epoch.dead_channels.len() as u32,
                dead_nodes: epoch.dead_nodes.len() as u32,
                revived_channels: epoch.revived_channels.len() as u32,
                revived_nodes: epoch.revived_nodes.len() as u32,
            });
        }
    }

    /// Removes every trace of packet `pkt` from the network — flits in
    /// FIFOs, staging and ejection registers, claimed routes and channel
    /// ownerships, and its source-queue entry — and updates the drop
    /// accounting. Only called on fault paths; a run without faults never
    /// drops.
    fn drop_packet(&mut self, pkt: u32) {
        let flits_dropped_before = self.dropped_flits;
        let len = self.packets[pkt as usize].len;
        // Input FIFOs: compact each ring that holds flits of the packet
        // (rings can interleave flits of different packets).
        for idx in 0..self.num_invc {
            let n = self.fifo_len[idx] as usize;
            if n == 0 {
                continue;
            }
            let head = self.fifo_head[idx] as usize;
            let base = idx * self.depth;
            let mut kept = 0usize;
            for k in 0..n {
                let f = self.fifo[base + (head + k) % self.depth];
                if f.pkt == pkt {
                    continue;
                }
                self.fifo[base + (head + kept) % self.depth] = f;
                kept += 1;
            }
            let removed = n - kept;
            if removed == 0 {
                continue;
            }
            self.fifo_len[idx] = kept as u32;
            self.buffered_flits -= removed as u64;
            self.dropped_flits += removed as u64;
            if kept == 0 {
                self.active_in.remove(idx);
            }
            if self.route[idx] == ROUTE_NONE {
                // The purged head may have been a header mid-arbitration;
                // its committed port and patience die with it.
                self.blocked[idx] = 0;
                self.pending_port[idx] = NO_PORT;
            }
        }
        // Staging registers.
        for idx in 0..self.num_invc {
            let Some(f) = self.staged[idx] else { continue };
            if f.pkt != pkt {
                continue;
            }
            self.staged[idx] = None;
            let c = idx / self.vcs as usize;
            self.staged_count[c] -= 1;
            if self.staged_count[c] == 0 {
                self.staged_active.remove(c);
            }
            self.buffered_flits -= 1;
            self.dropped_flits += 1;
            if f.seq + 1 == len && self.owner[idx] != DEAD {
                // A staged tail still holds the channel (it is released
                // only on link traversal) even though the upstream route
                // was already reset when the tail was popped.
                self.owner[idx] = FREE;
            }
        }
        // Ejection registers.
        for v in 0..self.cg.num_nodes() as usize {
            let Some(f) = self.eject_staged[v] else {
                continue;
            };
            if f.pkt != pkt {
                continue;
            }
            self.eject_staged[v] = None;
            self.eject_active.remove(v);
            self.buffered_flits -= 1;
            self.dropped_flits += 1;
            if f.seq + 1 == len && self.eject_owner[v] != DEAD {
                self.eject_owner[v] = FREE;
            }
        }
        // Claimed routes and the channels they own.
        for i in 0..self.num_inputs {
            if self.route[i] == ROUTE_NONE || self.route_pkt[i] != pkt {
                continue;
            }
            let r = self.route[i];
            if r == ROUTE_EJECT {
                let v = self.input_node(i) as usize;
                if self.eject_owner[v] == i as u32 {
                    self.eject_owner[v] = FREE;
                }
            } else if self.owner[r as usize] == i as u32 {
                self.owner[r as usize] = FREE;
            }
            self.route[i] = ROUTE_NONE;
            self.route_pkt[i] = NO_PKT;
            self.pending_port[i] = NO_PORT;
            self.blocked[i] = 0;
        }
        // Source-queue entry (queued, or mid-injection at the front).
        let src = self.packets[pkt as usize].src as usize;
        if let Some(pos) = self.src_queue[src].iter().position(|&p| p == pkt) {
            if pos == 0 {
                self.src_sent[src] = 0;
            }
            self.src_queue[src].remove(pos);
            if self.src_queue[src].is_empty() {
                self.active_in.remove(self.num_invc + src);
            }
        }
        self.live_packets -= 1;
        self.dropped_packets += 1;
        let (cycle, flits_lost) = (self.now, self.dropped_flits - flits_dropped_before);
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.record(&SimEvent::Drop {
                cycle,
                pkt,
                flits_lost: flits_lost as u32,
            });
        }
    }

    /// Advances the network by one clock.
    fn step(&mut self) {
        if self.next_reconfig < self.reconfigs.len() {
            self.apply_due_reconfigs();
        }
        self.inject();
        match self.cfg.engine_core {
            EngineCore::ActiveSet => {
                self.link_stage_active();
                self.eject_stage_active();
                self.crossbar_stage_active();
            }
            EngineCore::DenseReference => {
                self.link_stage_dense();
                self.eject_stage_dense();
                self.crossbar_stage_dense();
            }
        }
        if self.measuring() {
            self.buffered_flit_cycles += self.buffered_flits;
        }
        self.now += 1;
    }

    /// Generates new packets at each node (rate `injection_rate /
    /// packet_len` packets per node per cycle).
    fn inject(&mut self) {
        if self.cg.num_nodes() < 2 || self.inject_p == 0.0 {
            return;
        }
        match self.cfg.injection_sampling {
            InjectionSampling::PerCycle => self.inject_per_cycle(),
            InjectionSampling::Geometric => self.inject_geometric(),
        }
    }

    /// One arrival-process draw per node per cycle (the seed RNG stream).
    fn inject_per_cycle(&mut self) {
        let n = self.cg.num_nodes();
        let p = self.inject_p;
        let arrivals = self.cfg.arrivals;
        for v in 0..n {
            if self.node_dead[v as usize] {
                // A dead processor generates nothing (and costs no draw).
                continue;
            }
            let mut on = self.src_on[v as usize];
            let arrived = arrivals.arrives(&mut self.rng, &mut on, p);
            self.src_on[v as usize] = on;
            if arrived {
                self.generate_packet(v);
            }
        }
    }

    /// Calendar-queue arrivals: only sources whose pre-drawn arrival time
    /// is due cost anything this cycle; each arrival schedules the next
    /// one a geometric gap ahead.
    fn inject_geometric(&mut self) {
        while let Some(&Reverse((t, v))) = self.next_arrival.peek() {
            if t > self.now {
                break;
            }
            self.next_arrival.pop();
            if self.node_dead[v as usize] {
                // A dead source's arrival stream ends: drop without re-arm.
                continue;
            }
            self.generate_packet(v);
            let skip = geometric_skip(&mut self.rng, self.inject_p);
            self.next_arrival
                .push(Reverse((self.now.saturating_add(1 + skip), v)));
        }
    }

    /// Creates one packet at `v` with a freshly drawn destination.
    fn generate_packet(&mut self, v: NodeId) {
        let n = self.cg.num_nodes();
        let dst = self.cfg.traffic.pick_dest(&mut self.rng, v, n);
        let id = self.packets.len() as u32;
        self.packets.push(Packet {
            src: v,
            dst,
            gen_time: self.now,
            len: self.cfg.packet_len,
            detours: 0,
        });
        self.src_queue[v as usize].push_back(id);
        self.active_in.insert(self.num_invc + v as usize);
        self.live_packets += 1;
        if self.measuring() {
            self.packets_generated += 1;
            self.node_packets_generated[v as usize] += 1;
        }
        let (cycle, len) = (self.now, self.cfg.packet_len);
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.record(&SimEvent::Inject {
                cycle,
                pkt: id,
                src: v,
                dst,
                len,
            });
        }
    }

    /// Link stage, dense reference: every physical channel, every clock.
    fn link_stage_dense(&mut self) {
        for c in 0..self.cg.num_channels() as usize {
            self.advance_link(c);
        }
    }

    /// Link stage, active-set core: only channels with an occupied staging
    /// register. Ascending order matches the dense scan.
    fn link_stage_active(&mut self) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.staged_active.collect(&mut scratch);
        for &c in &scratch {
            self.advance_link(c as usize);
        }
        self.scratch = scratch;
    }

    /// Moves at most one flit on physical channel `c` from its staging
    /// registers to the downstream input FIFO (1-clock link traversal).
    fn advance_link(&mut self, c: usize) {
        let vcs = self.vcs as usize;
        let start = self.rr[c] as usize;
        for k in 0..vcs {
            let vc = (start + k) % vcs;
            let idx = c * vcs + vc;
            let Some(flit) = self.staged[idx] else {
                continue;
            };
            #[cfg(debug_assertions)]
            assert!(
                self.staged_active.contains(c),
                "channel {c} staged but inactive"
            );
            if flit.time >= self.now {
                continue;
            }
            if self.fifo_len[idx] as usize >= self.depth {
                continue;
            }
            self.staged[idx] = None;
            self.staged_count[c] -= 1;
            if self.staged_count[c] == 0 {
                self.staged_active.remove(c);
            }
            self.fifo_push(
                idx,
                Flit {
                    time: self.now,
                    ..flit
                },
            );
            if self.measuring() {
                self.channel_flits[c] += 1;
            }
            self.note_progress();
            if flit.seq + 1 == self.packets[flit.pkt as usize].len {
                // Tail has traversed the link: the virtual channel is
                // released for a new reservation.
                self.owner[idx] = FREE;
            }
            if flit.seq == 0 {
                let cycle = self.now;
                if let Some(rec) = self.recorder.as_deref_mut() {
                    rec.record(&SimEvent::HeaderAdvance {
                        cycle,
                        pkt: flit.pkt,
                        channel: c as ChannelId,
                        vc: vc as u32,
                    });
                }
            }
            self.rr[c] = ((vc + 1) % vcs) as u32;
            break;
        }
    }

    /// Ejection stage, dense reference: every node, every clock.
    fn eject_stage_dense(&mut self) {
        for v in 0..self.cg.num_nodes() as usize {
            self.advance_eject(v);
        }
    }

    /// Ejection stage, active-set core: only nodes with a pending flit.
    fn eject_stage_active(&mut self) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.eject_active.collect(&mut scratch);
        for &v in &scratch {
            self.advance_eject(v as usize);
        }
        self.scratch = scratch;
    }

    /// Delivers at most one flit at node `v` from the ejection register to
    /// the local processor.
    fn advance_eject(&mut self, v: usize) {
        let Some(flit) = self.eject_staged[v] else {
            return;
        };
        #[cfg(debug_assertions)]
        assert!(
            self.eject_active.contains(v),
            "node {v} staged but inactive"
        );
        if flit.time >= self.now {
            return;
        }
        self.eject_staged[v] = None;
        self.eject_active.remove(v);
        self.buffered_flits -= 1;
        self.delivered_flits_total += 1;
        self.note_progress();
        let pkt = self.packets[flit.pkt as usize];
        let measuring = self.measuring();
        if measuring {
            self.flits_delivered += 1;
            self.node_flits_delivered[v] += 1;
        }
        if flit.seq + 1 == pkt.len {
            self.eject_owner[v] = FREE;
            self.live_packets -= 1;
            if measuring {
                self.packets_delivered += 1;
                let lat = self.now - pkt.gen_time;
                self.latency_sum += lat as u64;
                self.latency_max = self.latency_max.max(lat);
                self.latency_hist.record(lat);
            }
            let (cycle, latency) = (self.now, self.now - pkt.gen_time);
            if let Some(rec) = self.recorder.as_deref_mut() {
                rec.record(&SimEvent::Eject {
                    cycle,
                    pkt: flit.pkt,
                    node: v as NodeId,
                    latency,
                });
            }
        }
    }

    /// Crossbar stage, dense reference: every input, every clock, in the
    /// rotated fairness order (two linear sweeps — no per-input modulo).
    fn crossbar_stage_dense(&mut self) {
        let offset = self.now as usize % self.num_inputs;
        for i in (offset..self.num_inputs).chain(0..offset) {
            self.advance_input(i);
        }
    }

    /// Crossbar stage, active-set core: only inputs with queued flits, in
    /// the same rotated order the dense scan uses.
    fn crossbar_stage_active(&mut self) {
        if self.num_inputs == 0 {
            return;
        }
        let offset = self.now as usize % self.num_inputs;
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.active_in.collect_rotated(offset, &mut scratch);
        for &i in &scratch {
            self.advance_input(i as usize);
        }
        self.scratch = scratch;
    }

    /// Processes one input: (a) arbitrate if its head flit is an unrouted
    /// header, (b) move the head flit along its assigned route if the next
    /// stage is free.
    fn advance_input(&mut self, i: usize) {
        let head = self.peek_head(i);
        let Some(flit) = head else { return };
        // The dense core double-checks the worklist bookkeeping: any input
        // with a queued flit must be in `active_in`.
        #[cfg(debug_assertions)]
        assert!(self.active_in.contains(i), "input {i} queued but inactive");
        if flit.time >= self.now {
            return;
        }
        if self.route[i] == ROUTE_NONE {
            debug_assert_eq!(flit.seq, 0, "only headers arbitrate");
            match self.arbitrate(i, flit) {
                Arb::Claimed => self.blocked[i] = 0,
                Arb::Blocked => {
                    self.blocked[i] += 1;
                    if self.measuring() {
                        self.header_block_cycles += 1;
                    }
                    if self.recorder.is_some() {
                        let (cycle, node, waited) = (self.now, self.input_node(i), self.blocked[i]);
                        if let Some(rec) = self.recorder.as_deref_mut() {
                            rec.record(&SimEvent::Block {
                                cycle,
                                pkt: flit.pkt,
                                node,
                                waited,
                            });
                        }
                    }
                    return;
                }
                // The packet was destroyed; this input's head (if any) is
                // now a different packet and gets its turn next cycle.
                Arb::Dropped => return,
            }
        }
        let route = self.route[i];
        let moved = if route == ROUTE_EJECT {
            let v = self.input_node(i) as usize;
            if self.eject_staged[v].is_none() {
                self.eject_staged[v] = Some(Flit {
                    time: self.now,
                    ..flit
                });
                self.eject_active.insert(v);
                true
            } else {
                false
            }
        } else if self.staged[route as usize].is_none() {
            debug_assert_eq!(self.owner[route as usize], i as u32);
            self.staged[route as usize] = Some(Flit {
                time: self.now,
                ..flit
            });
            let c = route as usize / self.vcs as usize;
            self.staged_count[c] += 1;
            self.staged_active.insert(c);
            true
        } else {
            false
        };
        if moved {
            self.pop_head(i);
            self.note_progress();
            if flit.seq + 1 == self.packets[flit.pkt as usize].len {
                self.route[i] = ROUTE_NONE;
                self.route_pkt[i] = NO_PKT;
            }
        }
    }

    /// The node an input belongs to.
    #[inline]
    fn input_node(&self, i: usize) -> NodeId {
        if i < self.num_invc {
            self.cg.channels().sink((i / self.vcs as usize) as u32)
        } else {
            (i - self.num_invc) as NodeId
        }
    }

    /// Pushes a flit onto input FIFO `i`'s ring buffer in the flat arena.
    #[inline]
    fn fifo_push(&mut self, i: usize, flit: Flit) {
        let len = self.fifo_len[i] as usize;
        debug_assert!(len < self.depth, "FIFO overflow at input {i}");
        let pos = (self.fifo_head[i] as usize + len) % self.depth;
        self.fifo[i * self.depth + pos] = flit;
        self.fifo_len[i] = (len + 1) as u32;
        self.active_in.insert(i);
    }

    /// Head flit of an input, if any.
    fn peek_head(&self, i: usize) -> Option<Flit> {
        if i < self.num_invc {
            if self.fifo_len[i] == 0 {
                return None;
            }
            Some(self.fifo[i * self.depth + self.fifo_head[i] as usize])
        } else {
            let v = i - self.num_invc;
            let &pkt = self.src_queue[v].front()?;
            let seq = self.src_sent[v];
            // A source flit is ready one cycle after generation (header) or
            // one cycle after its predecessor left (body); using the packet
            // generation time for the header and `now - 1` for body flits
            // models a processor that can feed one flit per clock.
            let time = if seq == 0 {
                self.packets[pkt as usize].gen_time
            } else {
                self.now - 1
            };
            Some(Flit { pkt, seq, time })
        }
    }

    /// Consumes the head flit of an input after it moved.
    fn pop_head(&mut self, i: usize) {
        if i < self.num_invc {
            debug_assert!(self.fifo_len[i] > 0, "popped empty FIFO");
            self.fifo_head[i] = ((self.fifo_head[i] as usize + 1) % self.depth) as u32;
            self.fifo_len[i] -= 1;
            if self.fifo_len[i] == 0 {
                self.active_in.remove(i);
            }
            // The flit left a FIFO and entered a staging register:
            // buffered count is unchanged.
        } else {
            let v = i - self.num_invc;
            self.src_sent[v] += 1;
            let pkt = *self.src_queue[v].front().expect("popped empty source") as usize;
            // A source flit entered the network.
            self.buffered_flits += 1;
            self.injected_flits_total += 1;
            if self.src_sent[v] == self.packets[pkt].len {
                self.src_queue[v].pop_front();
                self.src_sent[v] = 0;
                if self.src_queue[v].is_empty() {
                    self.active_in.remove(i);
                }
            }
        }
    }

    /// Tries to assign an output to the header at input `i`.
    fn arbitrate(&mut self, i: usize, header: Flit) -> Arb {
        let ch = self.cg.channels();
        let v = self.input_node(i);
        let dst = self.packets[header.pkt as usize].dst;
        if self.node_dead[dst as usize] {
            // The destination died: the packet can never be delivered.
            self.drop_packet(header.pkt);
            return Arb::Dropped;
        }
        if v == dst {
            if self.eject_owner[v as usize] == FREE {
                self.eject_owner[v as usize] = i as u32;
                self.route[i] = ROUTE_EJECT;
                self.route_pkt[i] = header.pkt;
                return Arb::Claimed;
            }
            return Arb::Blocked;
        }
        let slot = if i < self.num_invc {
            ch.in_port((i / self.vcs as usize) as u32) as usize + 1
        } else {
            INJECTION_SLOT
        };
        let mut mask = self.tables.candidates(dst, v, slot);
        debug_assert!(
            mask != 0 || self.reconfig_epochs > 0,
            "no minimal candidate at node {v} slot {slot} for dst {dst}"
        );
        if mask == 0 {
            // Graceful degradation: a packet routed under the pre-fault
            // table can arrive at an input whose repaired minimal mask is
            // empty. Fall back to any turn-legal output that still reaches
            // the destination; if none exists, the packet is stranded and
            // is dropped rather than left to wedge the network.
            mask = self.tables.candidates_any(dst, v, slot);
            if mask == 0 {
                self.drop_packet(header.pkt);
                return Arb::Dropped;
            }
        }

        // Committed modes: decide on one port up front and wait for it.
        if matches!(
            self.cfg.route_choice,
            RouteChoice::ObliviousRandom | RouteChoice::DeterministicMinimal
        ) {
            if self.pending_port[i] != NO_PORT && (mask >> self.pending_port[i]) & 1 == 0 {
                // The committed port fell out of the candidate set (a
                // reconfiguration killed it): re-decide below.
                self.pending_port[i] = NO_PORT;
            }
            if self.pending_port[i] == NO_PORT {
                self.pending_port[i] = match self.cfg.route_choice {
                    RouteChoice::DeterministicMinimal => mask.trailing_zeros() as u8,
                    _ => {
                        let nbits = mask.count_ones();
                        let pick = self.rng.gen_range(0..nbits);
                        nth_set_bit(mask, pick) as u8
                    }
                };
            }
            let p = self.pending_port[i];
            if let Some(out) = self.free_outvc(v, p) {
                self.claim(i, out, header.pkt);
                self.pending_port[i] = NO_PORT;
                return Arb::Claimed;
            }
            return Arb::Blocked;
        }

        // Adaptive modes: consider every candidate port with a free VC.
        let mut free_mask = 0u16;
        let mut m = mask;
        while m != 0 {
            let p = m.trailing_zeros() as u8;
            m &= m - 1;
            if self.free_outvc(v, p).is_some() {
                free_mask |= 1 << p;
            }
        }
        let mut misrouting = false;
        if free_mask == 0 {
            // Non-minimal escape: after `misroute_patience` blocked cycles a
            // packet with remaining detour budget may claim any turn-legal,
            // non-dead-end output. Staying inside the allowed turn set keeps
            // the escape deadlock-free; the per-packet budget bounds
            // livelock.
            let Some(patience) = self.cfg.misroute_patience else {
                return Arb::Blocked;
            };
            if self.blocked[i] < patience
                || self.packets[header.pkt as usize].detours >= self.cfg.max_detours
            {
                return Arb::Blocked;
            }
            let escape = self.tables.candidates_any(dst, v, slot) & !mask;
            let mut m = escape;
            while m != 0 {
                let p = m.trailing_zeros() as u8;
                m &= m - 1;
                if self.free_outvc(v, p).is_some() {
                    free_mask |= 1 << p;
                }
            }
            if free_mask == 0 {
                return Arb::Blocked;
            }
            misrouting = true;
        }
        let p = match self.cfg.route_choice {
            RouteChoice::FirstFree => free_mask.trailing_zeros() as u8,
            _ => {
                let nbits = free_mask.count_ones();
                let pick = self.rng.gen_range(0..nbits);
                nth_set_bit(free_mask, pick) as u8
            }
        };
        let out = self.free_outvc(v, p).expect("port had a free vc");
        if misrouting {
            self.packets[header.pkt as usize].detours += 1;
        }
        self.claim(i, out, header.pkt);
        Arb::Claimed
    }

    /// Lowest free virtual channel of output port `p` at node `v`.
    fn free_outvc(&self, v: NodeId, p: u8) -> Option<usize> {
        let c = self.cg.channels().output_at(v, p) as usize;
        let vcs = self.vcs as usize;
        (0..vcs)
            .map(|vc| c * vcs + vc)
            .find(|&idx| self.owner[idx] == FREE)
    }

    fn claim(&mut self, i: usize, out: usize, pkt: u32) {
        self.owner[out] = i as u32;
        self.route[i] = out as u32;
        self.route_pkt[i] = pkt;
        let vcs = self.vcs as usize;
        let cycle = self.now;
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.record(&SimEvent::VcAlloc {
                cycle,
                pkt,
                channel: (out / vcs) as ChannelId,
                vc: (out % vcs) as u32,
            });
        }
    }

    #[inline]
    fn note_progress(&mut self) {
        self.last_progress = self.now;
    }
}

/// Outcome of one header arbitration.
enum Arb {
    /// A route was claimed; the flit may move this cycle.
    Claimed,
    /// No free output: the header waits (counted as a blocked cycle).
    Blocked,
    /// The packet was destroyed (dead destination or stranded by a
    /// reconfiguration).
    Dropped,
}

/// Index of the `k`-th (0-based) set bit of `mask`.
fn nth_set_bit(mask: u16, k: u32) -> u32 {
    let mut m = mask;
    for _ in 0..k {
        m &= m - 1;
    }
    m.trailing_zeros()
}

/// Number of idle cycles before the next geometric arrival: the count of
/// failures before the first success of a Bernoulli(`p`) sequence, sampled
/// by inversion from one uniform draw. Uses the same 53-bit uniform
/// construction as the vendored `Rng::gen_bool`.
fn geometric_skip(rng: &mut ChaCha8Rng, p: f64) -> u32 {
    debug_assert!(p > 0.0 && p <= 1.0);
    if p >= 1.0 {
        return 0;
    }
    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let skip = (1.0 - u).ln() / (1.0 - p).ln();
    if skip >= u32::MAX as f64 {
        u32::MAX
    } else {
        skip as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EngineCore, InjectionSampling};
    use irnet_baselines::{lturn, updown};
    use irnet_core::DownUp;
    use irnet_topology::gen;
    use irnet_turns::TurnTable;

    fn quick_cfg(rate: f64) -> SimConfig {
        SimConfig {
            packet_len: 8,
            injection_rate: rate,
            warmup_cycles: 300,
            measure_cycles: 1_500,
            deadlock_threshold: 3_000,
            ..SimConfig::default()
        }
    }

    #[test]
    fn nth_set_bit_works() {
        assert_eq!(nth_set_bit(0b1011, 0), 0);
        assert_eq!(nth_set_bit(0b1011, 1), 1);
        assert_eq!(nth_set_bit(0b1011, 2), 3);
    }

    #[test]
    fn low_load_latency_tracks_route_length() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 5).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let cfg = quick_cfg(0.005);
        let stats = Simulator::new(r.comm_graph(), r.routing_tables(), cfg, 1).run();
        assert!(!stats.deadlocked);
        assert!(stats.packets_delivered > 0);
        // At near-zero load latency ≈ serialization (packet_len) + a couple
        // of clocks per hop; it must exceed the packet length and stay far
        // below the congested regime.
        let lat = stats.avg_latency();
        assert!(
            lat > cfg.packet_len as f64,
            "latency {lat} below serialization floor"
        );
        assert!(
            lat < 40.0 * cfg.packet_len as f64,
            "latency {lat} absurdly high at low load"
        );
    }

    #[test]
    fn delivered_flits_are_multiples_of_progress() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(12, 4), 2).unwrap();
        let r = updown::construct_bfs(&topo).unwrap();
        let stats = Simulator::new(r.comm_graph(), r.routing_tables(), quick_cfg(0.02), 3).run();
        assert!(!stats.deadlocked);
        // Every delivered packet contributes exactly packet_len flits, but
        // flit deliveries of in-flight packets also count; the inequality
        // below must hold.
        assert!(stats.flits_delivered >= stats.packets_delivered * 8);
    }

    #[test]
    fn determinism_per_seed() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(12, 4), 7).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let a = Simulator::new(r.comm_graph(), r.routing_tables(), quick_cfg(0.05), 9).run();
        let b = Simulator::new(r.comm_graph(), r.routing_tables(), quick_cfg(0.05), 9).run();
        assert_eq!(a.flits_delivered, b.flits_delivered);
        assert_eq!(a.latency_sum, b.latency_sum);
        assert_eq!(a.channel_flits, b.channel_flits);
        let c = Simulator::new(r.comm_graph(), r.routing_tables(), quick_cfg(0.05), 10).run();
        assert_ne!(a.channel_flits, c.channel_flits);
    }

    /// The heart of the refactor's correctness argument: the active-set
    /// core and the dense reference scan must produce bit-identical
    /// statistics across routing algorithms, loads, VC counts and seeds.
    #[test]
    fn active_set_matches_dense_reference_bit_exactly() {
        for topo_seed in [5u64, 11] {
            let topo =
                gen::random_irregular(gen::IrregularParams::paper(16, 4), topo_seed).unwrap();
            let routings = [
                {
                    let (_, cg, _, rt) = DownUp::new().construct(&topo).unwrap().into_parts();
                    (cg, rt)
                },
                {
                    let (_, cg, _, rt) = lturn::construct(&topo).unwrap().into_parts();
                    (cg, rt)
                },
            ];
            for (cg, rt) in &routings {
                for rate in [0.002, 0.05, 0.8] {
                    for vcs in [1u32, 2] {
                        for sim_seed in [1u64, 2] {
                            let base = SimConfig {
                                virtual_channels: vcs,
                                ..quick_cfg(rate)
                            };
                            let dense = Simulator::new(
                                cg,
                                rt,
                                SimConfig {
                                    engine_core: EngineCore::DenseReference,
                                    ..base
                                },
                                sim_seed,
                            )
                            .run();
                            let active = Simulator::new(
                                cg,
                                rt,
                                SimConfig {
                                    engine_core: EngineCore::ActiveSet,
                                    ..base
                                },
                                sim_seed,
                            )
                            .run();
                            assert_eq!(
                                dense, active,
                                "cores diverged: topo {topo_seed} rate {rate} \
                                 vcs {vcs} seed {sim_seed}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// The cores must also agree on the misrouting escape path and the
    /// committed (oblivious/deterministic) arbitration modes.
    #[test]
    fn cores_agree_on_misrouting_and_route_choices() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 8).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let configs = [
            SimConfig {
                misroute_patience: Some(4),
                max_detours: 6,
                ..quick_cfg(0.8)
            },
            SimConfig {
                route_choice: RouteChoice::ObliviousRandom,
                ..quick_cfg(0.1)
            },
            SimConfig {
                route_choice: RouteChoice::DeterministicMinimal,
                ..quick_cfg(0.1)
            },
            SimConfig {
                route_choice: RouteChoice::FirstFree,
                ..quick_cfg(0.1)
            },
            SimConfig {
                arrivals: crate::ArrivalProcess::OnOff {
                    mean_burst: 20,
                    burstiness: 3.0,
                },
                ..quick_cfg(0.1)
            },
        ];
        for (k, base) in configs.into_iter().enumerate() {
            let dense = Simulator::new(
                r.comm_graph(),
                r.routing_tables(),
                SimConfig {
                    engine_core: EngineCore::DenseReference,
                    ..base
                },
                7,
            )
            .run();
            let active = Simulator::new(
                r.comm_graph(),
                r.routing_tables(),
                SimConfig {
                    engine_core: EngineCore::ActiveSet,
                    ..base
                },
                7,
            )
            .run();
            assert_eq!(dense, active, "cores diverged on config {k}");
        }
    }

    /// Golden pins for the active-set path: 2 fixed seeds per algorithm.
    /// Pure functions of the seeded ChaCha8 stream; if one fails after an
    /// intentional change, re-derive with `PRINT_ENGINE_GOLDEN=1 cargo
    /// test -p irnet-sim print_engine_golden -- --nocapture`.
    #[test]
    fn active_set_golden_pins() {
        for (pin, want) in engine_golden_cases().into_iter().zip(ENGINE_GOLDEN) {
            assert_eq!(pin.1, want, "engine golden pin changed for {}", pin.0);
        }
    }

    /// (label, (packets_delivered, latency_sum, sum(channel_flits),
    /// deadlocked)) per golden case.
    fn engine_golden_cases() -> Vec<(String, (u64, u64, u64, bool))> {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 5).unwrap();
        let routings = [
            ("downup", {
                let (_, cg, _, rt) = DownUp::new().construct(&topo).unwrap().into_parts();
                (cg, rt)
            }),
            ("lturn", {
                let (_, cg, _, rt) = lturn::construct(&topo).unwrap().into_parts();
                (cg, rt)
            }),
        ];
        let mut out = Vec::new();
        for (name, (cg, rt)) in &routings {
            for seed in [1u64, 2] {
                let stats = Simulator::new(cg, rt, quick_cfg(0.05), seed).run();
                out.push((
                    format!("{name}/seed{seed}"),
                    (
                        stats.packets_delivered,
                        stats.latency_sum,
                        stats.channel_flits.iter().sum(),
                        stats.deadlocked,
                    ),
                ));
            }
        }
        out
    }

    const ENGINE_GOLDEN: [(u64, u64, u64, bool); 4] = [
        (150, 2067, 2696, false), // downup/seed1
        (160, 2265, 2869, false), // downup/seed2
        (151, 2069, 2608, false), // lturn/seed1
        (163, 2285, 2850, false), // lturn/seed2
    ];

    /// Regenerates [`ENGINE_GOLDEN`] (and the geometric pins) after an
    /// intentional behavioural change.
    #[test]
    fn print_engine_golden() {
        if std::env::var("PRINT_ENGINE_GOLDEN").is_err() {
            return;
        }
        for (label, pin) in engine_golden_cases() {
            println!("{label}: {pin:?}");
        }
        for (label, pin) in geometric_golden_cases() {
            println!("{label}: {pin:?}");
        }
    }

    /// Geometric sampling has its own RNG stream, so its own pins.
    #[test]
    fn geometric_sampling_golden_pins() {
        for (pin, want) in geometric_golden_cases().into_iter().zip(GEOMETRIC_GOLDEN) {
            assert_eq!(pin.1, want, "geometric golden pin changed for {}", pin.0);
        }
    }

    fn geometric_golden_cases() -> Vec<(String, (u64, u64, u64, bool))> {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 5).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let mut out = Vec::new();
        for seed in [1u64, 2] {
            let cfg = SimConfig {
                injection_sampling: InjectionSampling::Geometric,
                ..quick_cfg(0.05)
            };
            let stats = Simulator::new(r.comm_graph(), r.routing_tables(), cfg, seed).run();
            out.push((
                format!("geometric/seed{seed}"),
                (
                    stats.packets_delivered,
                    stats.latency_sum,
                    stats.channel_flits.iter().sum(),
                    stats.deadlocked,
                ),
            ));
        }
        out
    }

    const GEOMETRIC_GOLDEN: [(u64, u64, u64, bool); 2] = [
        (141, 2034, 2638, false), // geometric/seed1
        (137, 1870, 2332, false), // geometric/seed2
    ];

    /// Geometric skip-sampling must reproduce the Bernoulli arrival law:
    /// same long-run offered load, same delivered throughput within
    /// statistical tolerance, and identical results across cores.
    #[test]
    fn geometric_sampling_matches_bernoulli_statistically() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 3).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let rate = 0.05;
        let cfg = |sampling| SimConfig {
            injection_sampling: sampling,
            packet_len: 8,
            injection_rate: rate,
            warmup_cycles: 500,
            measure_cycles: 8_000,
            deadlock_threshold: 5_000,
            ..SimConfig::default()
        };
        let mut per_cycle = 0.0;
        let mut geometric = 0.0;
        for seed in 0..4 {
            per_cycle += Simulator::new(
                r.comm_graph(),
                r.routing_tables(),
                cfg(InjectionSampling::PerCycle),
                seed,
            )
            .run()
            .accepted_traffic();
            geometric += Simulator::new(
                r.comm_graph(),
                r.routing_tables(),
                cfg(InjectionSampling::Geometric),
                seed,
            )
            .run()
            .accepted_traffic();
        }
        per_cycle /= 4.0;
        geometric /= 4.0;
        assert!(
            (geometric / per_cycle - 1.0).abs() < 0.1,
            "geometric accepted {geometric:.5} vs per-cycle {per_cycle:.5}"
        );
        // And the two cores agree bit-exactly in geometric mode too.
        let dense = Simulator::new(
            r.comm_graph(),
            r.routing_tables(),
            SimConfig {
                engine_core: EngineCore::DenseReference,
                ..cfg(InjectionSampling::Geometric)
            },
            11,
        )
        .run();
        let active = Simulator::new(
            r.comm_graph(),
            r.routing_tables(),
            SimConfig {
                engine_core: EngineCore::ActiveSet,
                ..cfg(InjectionSampling::Geometric)
            },
            11,
        )
        .run();
        assert_eq!(dense, active);
    }

    #[test]
    fn set_injection_rate_keeps_hoisted_probability_in_sync() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(10, 4), 1).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let mut sim = Simulator::new(r.comm_graph(), r.routing_tables(), quick_cfg(0.2), 3);
        assert!((sim.inject_p - 0.2 / 8.0).abs() < 1e-12);
        sim.set_injection_rate(0.0);
        assert_eq!(sim.inject_p, 0.0);
        for _ in 0..100 {
            sim.step();
        }
        assert_eq!(sim.packets.len(), 0, "zero rate must stop injection");
        sim.set_injection_rate(0.4);
        assert!((sim.inject_p - 0.4 / 8.0).abs() < 1e-12);
        for _ in 0..500 {
            sim.step();
        }
        assert!(!sim.packets.is_empty(), "restored rate must inject again");
    }

    #[test]
    fn unrestricted_routing_on_a_ring_deadlocks_under_load() {
        // The negative control: with every turn allowed, a ring saturated
        // with traffic must produce a cyclic wait and trip the watchdog.
        let topo = gen::ring(8).unwrap();
        let tree =
            irnet_topology::CoordinatedTree::build(&topo, irnet_topology::PreorderPolicy::M1, 0)
                .unwrap();
        let cg = irnet_topology::CommGraph::build(&topo, &tree);
        let table = TurnTable::all_allowed(&cg);
        let rt = irnet_turns::RoutingTables::build(&cg, &table).unwrap();
        let cfg = SimConfig {
            packet_len: 16,
            injection_rate: 0.9,
            buffer_depth: 1,
            warmup_cycles: 0,
            measure_cycles: 50_000,
            deadlock_threshold: 2_000,
            ..SimConfig::default()
        };
        let stats = Simulator::new(&cg, &rt, cfg, 4).run();
        assert!(
            stats.deadlocked,
            "expected the watchdog to fire on an unrestricted ring"
        );
    }

    #[test]
    fn verified_routing_never_deadlocks_under_heavy_load() {
        for seed in 0..3 {
            let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), seed).unwrap();
            let r = DownUp::new().construct(&topo).unwrap();
            let cfg = SimConfig {
                packet_len: 8,
                injection_rate: 1.0,
                warmup_cycles: 0,
                measure_cycles: 6_000,
                deadlock_threshold: 3_000,
                ..SimConfig::default()
            };
            let stats = Simulator::new(r.comm_graph(), r.routing_tables(), cfg, seed).run();
            assert!(
                !stats.deadlocked,
                "DOWN/UP deadlocked at saturation (seed {seed})"
            );
            assert!(stats.accepted_traffic() > 0.0);
        }
    }

    #[test]
    fn accepted_traffic_saturates_monotonically_at_low_rates() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 11).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let mut prev = 0.0;
        for rate in [0.002, 0.01, 0.05] {
            let stats =
                Simulator::new(r.comm_graph(), r.routing_tables(), quick_cfg(rate), 2).run();
            let acc = stats.accepted_traffic();
            assert!(
                acc >= prev * 0.8,
                "throughput collapsed: {acc} after {prev}"
            );
            prev = acc;
        }
        // At very low load, accepted ≈ offered.
        let stats = Simulator::new(r.comm_graph(), r.routing_tables(), quick_cfg(0.01), 2).run();
        let acc = stats.accepted_traffic();
        assert!(
            (acc - 0.01).abs() < 0.005,
            "accepted {acc} far from offered 0.01"
        );
    }

    #[test]
    fn virtual_channels_do_not_break_anything() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(12, 4), 3).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let cfg = SimConfig {
            virtual_channels: 2,
            ..quick_cfg(0.05)
        };
        let stats = Simulator::new(r.comm_graph(), r.routing_tables(), cfg, 8).run();
        assert!(!stats.deadlocked);
        assert!(stats.packets_delivered > 0);
    }

    #[test]
    fn oblivious_and_first_free_policies_run() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(12, 4), 6).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        for choice in [
            RouteChoice::ObliviousRandom,
            RouteChoice::FirstFree,
            RouteChoice::DeterministicMinimal,
        ] {
            let cfg = SimConfig {
                route_choice: choice,
                ..quick_cfg(0.03)
            };
            let stats = Simulator::new(r.comm_graph(), r.routing_tables(), cfg, 5).run();
            assert!(!stats.deadlocked, "{choice:?} deadlocked");
            assert!(stats.packets_delivered > 0, "{choice:?} delivered nothing");
        }
    }

    #[test]
    fn deterministic_routing_narrows_channel_usage() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 9).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let det = SimConfig {
            route_choice: RouteChoice::DeterministicMinimal,
            ..quick_cfg(0.05)
        };
        let a = Simulator::new(r.comm_graph(), r.routing_tables(), det, 4).run();
        let b = Simulator::new(r.comm_graph(), r.routing_tables(), det, 4).run();
        assert_eq!(a.channel_flits, b.channel_flits);
        assert!(!a.deadlocked);
        let adaptive = Simulator::new(r.comm_graph(), r.routing_tables(), quick_cfg(0.05), 4).run();
        let used = |s: &crate::SimStats| s.channel_flits.iter().filter(|&&f| f > 0).count();
        assert!(
            used(&adaptive) >= used(&a),
            "adaptive routing should exercise at least as many channels"
        );
    }

    #[test]
    fn single_packet_latency_matches_the_timing_model() {
        // On an uncontended path s -> ... -> t with h hops, the paper's
        // timing (1 clock routing/arbitration, 1 clock crossbar, 1 clock
        // link) gives: the header reaches the destination buffer after
        // 2h clocks, takes 1 clock through the ejection crossbar and 1 to
        // deliver, and the remaining L-1 flits stream at 1 flit/clock:
        //     latency = 2h + L + 1.
        let topo = irnet_topology::Topology::new(4, 2, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let tree =
            irnet_topology::CoordinatedTree::build(&topo, irnet_topology::PreorderPolicy::M1, 0)
                .unwrap();
        let cg = irnet_topology::CommGraph::build(&topo, &tree);
        let table = TurnTable::all_allowed(&cg);
        let rt = irnet_turns::RoutingTables::build(&cg, &table).unwrap();
        for (len, hops, dst) in [(4u32, 3u32, 3u32), (8, 2, 2), (2, 1, 1)] {
            let cfg = SimConfig {
                packet_len: len,
                injection_rate: 0.0,
                warmup_cycles: 0,
                measure_cycles: 1,
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(&cg, &rt, cfg, 1);
            sim.enqueue_packet(0, dst);
            assert!(sim.drain(10_000), "single packet failed to drain");
            let stats = sim.finish();
            assert_eq!(stats.packets_delivered, 1);
            assert_eq!(
                stats.latency_max,
                2 * hops + len + 1,
                "len {len} hops {hops}: wrong latency"
            );
        }
    }

    #[test]
    fn manual_enqueue_and_drain_api() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(10, 4), 1).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let cfg = SimConfig {
            packet_len: 4,
            injection_rate: 0.0,
            warmup_cycles: 0,
            measure_cycles: 1,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(r.comm_graph(), r.routing_tables(), cfg, 2);
        for s in 0..10u32 {
            sim.enqueue_packet(s, (s + 3) % 10);
        }
        assert_eq!(sim.live_packet_count(), 10);
        assert!(sim.drain(50_000));
        assert_eq!(sim.live_packet_count(), 0);
        let stats = sim.finish();
        assert_eq!(stats.packets_delivered, 10);
        assert_eq!(stats.flits_delivered, 40);
        assert!(!stats.deadlocked);
    }

    #[test]
    fn misrouting_keeps_deadlock_freedom_and_delivers() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 8).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let cfg = SimConfig {
            misroute_patience: Some(4),
            max_detours: 6,
            ..quick_cfg(0.8)
        };
        let stats = Simulator::new(r.comm_graph(), r.routing_tables(), cfg, 3).run();
        assert!(
            !stats.deadlocked,
            "misrouting must stay inside the safe turn set"
        );
        assert!(stats.packets_delivered > 0);
        // At low load misrouting never triggers: results identical to the
        // plain configuration.
        let low = SimConfig {
            misroute_patience: Some(50),
            ..quick_cfg(0.01)
        };
        let a = Simulator::new(r.comm_graph(), r.routing_tables(), low, 5).run();
        let b = Simulator::new(r.comm_graph(), r.routing_tables(), quick_cfg(0.01), 5).run();
        assert_eq!(a.channel_flits, b.channel_flits);
    }

    #[test]
    fn contention_counters_track_load() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 3).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let low = Simulator::new(r.comm_graph(), r.routing_tables(), quick_cfg(0.01), 2).run();
        let high = Simulator::new(r.comm_graph(), r.routing_tables(), quick_cfg(0.9), 2).run();
        assert!(low.header_block_rate() < high.header_block_rate());
        assert!(low.avg_network_occupancy() < high.avg_network_occupancy());
        // Little's law sanity at low load: occupancy ≈ throughput × mean
        // time in network. Just check the occupancy is in a sane range.
        assert!(low.avg_network_occupancy() > 0.0);
        assert!(high.avg_network_occupancy() < 10_000.0);
    }

    /// Busiest link whose scripted failure at `cycle` is repairable (not a
    /// bridge), with its repaired epoch. Ranking by a probe run's traffic
    /// guarantees the fault actually cuts worms mid-flight.
    fn link_fault_epoch(
        topo: &irnet_topology::Topology,
        r: &irnet_core::DownUpRouting,
        cycle: u32,
    ) -> irnet_core::ReconfigEpoch {
        use irnet_topology::{FaultEvent, FaultKind, FaultPlan};
        let probe = Simulator::new(r.comm_graph(), r.routing_tables(), quick_cfg(0.3), 7).run();
        let mut links: Vec<u32> = (0..topo.num_links()).collect();
        links.sort_by_key(|&l| {
            std::cmp::Reverse(
                probe.channel_flits[2 * l as usize] + probe.channel_flits[2 * l as usize + 1],
            )
        });
        for l in links {
            let (a, b) = topo.link(l);
            let plan = FaultPlan::scripted([FaultEvent::down(cycle, FaultKind::Link { a, b })]);
            if let Ok(e) = irnet_core::repair_epoch(
                topo,
                r.comm_graph(),
                r.turn_table(),
                &plan,
                cycle,
                DownUp::new(),
            ) {
                return e;
            }
        }
        panic!("every link is a bridge");
    }

    fn as_fault_epoch(e: &irnet_core::ReconfigEpoch) -> FaultEpoch<'_> {
        FaultEpoch {
            cycle: e.cycle,
            dead_channels: e.dead_channels.clone(),
            dead_nodes: e.dead_nodes.clone(),
            revived_channels: e.revived_channels.clone(),
            revived_nodes: e.revived_nodes.clone(),
            tables: &e.tables,
        }
    }

    #[test]
    fn mid_run_link_failure_drops_and_recovers() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 5).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let epoch = link_fault_epoch(&topo, &r, 800);
        let cfg = SimConfig {
            packet_len: 8,
            injection_rate: 0.3,
            warmup_cycles: 0,
            measure_cycles: 4_000,
            deadlock_threshold: 2_000,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(r.comm_graph(), r.routing_tables(), cfg, 7);
        sim.schedule_reconfig(as_fault_epoch(&epoch));
        let stats = sim.run();
        assert!(!stats.deadlocked, "repaired run must not stall");
        assert_eq!(stats.reconfig_epochs, 1);
        assert!(stats.dropped_flits > 0, "loaded link died carrying nothing");
        assert!(stats.dropped_packets > 0);
        assert!(
            stats.packets_delivered > 100,
            "delivery did not recover: {}",
            stats.packets_delivered
        );
    }

    #[test]
    fn link_recovery_reenables_channels_and_conserves_flits() {
        use irnet_topology::{FaultEvent, FaultKind, FaultPlan};
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 5).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let plan = (0..topo.num_links())
            .find_map(|l| {
                let (a, b) = topo.link(l);
                let plan = FaultPlan::scripted([FaultEvent::recovering(
                    800,
                    FaultKind::Link { a, b },
                    2_000,
                )]);
                topo.degrade(&plan).ok().map(|_| plan)
            })
            .expect("every link is a bridge");
        let epochs =
            irnet_core::plan_epochs(&topo, r.comm_graph(), r.turn_table(), &plan, DownUp::new())
                .unwrap();
        assert_eq!(epochs.len(), 2, "one down epoch, one up epoch");
        assert!(epochs[0].is_down_only());
        assert!(epochs[1].dead_channels.is_empty());
        assert_eq!(epochs[1].revived_channels.len(), 2);
        let cfg = SimConfig {
            packet_len: 8,
            injection_rate: 0.3,
            warmup_cycles: 0,
            measure_cycles: 5_000,
            deadlock_threshold: 2_000,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(r.comm_graph(), r.routing_tables(), cfg, 7);
        for e in &epochs {
            sim.schedule_reconfig(as_fault_epoch(e));
        }
        let stats = sim.run();
        assert!(!stats.deadlocked, "recovered run must not stall");
        assert_eq!(stats.reconfig_epochs, 2);
        assert!(
            stats.flits_conserved(),
            "injected {} != delivered {} + dropped {} + buffered {}",
            stats.flits_injected_total,
            stats.flits_delivered_total,
            stats.dropped_flits,
            stats.flits_in_flight
        );
    }

    #[test]
    fn switch_recovery_rearms_geometric_injection() {
        use irnet_topology::{FaultEvent, FaultKind, FaultPlan};
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 5).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let (recovered_epochs, permanent_epochs) = (0..topo.num_nodes())
            .find_map(|node| {
                let rec = FaultPlan::scripted([FaultEvent::recovering(
                    600,
                    FaultKind::Switch { node },
                    2_600,
                )]);
                let perm = FaultPlan::scripted([FaultEvent::down(600, FaultKind::Switch { node })]);
                let plan = |p| {
                    irnet_core::plan_epochs(&topo, r.comm_graph(), r.turn_table(), p, DownUp::new())
                };
                Some((plan(&rec).ok()?, plan(&perm).ok()?))
            })
            .expect("some switch fault must be repairable");
        assert_eq!(recovered_epochs.len(), 2);
        let dead = recovered_epochs[0].dead_nodes[0] as usize;
        assert_eq!(recovered_epochs[1].revived_nodes, vec![dead as NodeId]);
        let run = |epochs: &[irnet_core::ReconfigEpoch]| {
            let cfg = SimConfig {
                packet_len: 8,
                injection_rate: 0.2,
                warmup_cycles: 0,
                measure_cycles: 8_000,
                deadlock_threshold: 2_000,
                injection_sampling: InjectionSampling::Geometric,
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(r.comm_graph(), r.routing_tables(), cfg, 7);
            for e in epochs {
                sim.schedule_reconfig(as_fault_epoch(e));
            }
            sim.run()
        };
        let recovered = run(&recovered_epochs);
        let permanent = run(&permanent_epochs);
        assert!(!recovered.deadlocked);
        assert_eq!(recovered.reconfig_epochs, 2);
        assert!(recovered.flits_conserved());
        assert!(permanent.flits_conserved());
        // The revived processor's arrival stream was re-armed: it keeps
        // generating after recovery, unlike under the permanent fault.
        assert!(
            recovered.node_packets_generated[dead] > permanent.node_packets_generated[dead],
            "revived node stayed silent: {} vs {}",
            recovered.node_packets_generated[dead],
            permanent.node_packets_generated[dead]
        );
    }

    #[test]
    fn cores_agree_bit_exactly_under_faults() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 11).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let epoch = link_fault_epoch(&topo, &r, 500);
        let run = |core| {
            let cfg = SimConfig {
                engine_core: core,
                packet_len: 8,
                injection_rate: 0.4,
                warmup_cycles: 0,
                measure_cycles: 3_000,
                deadlock_threshold: 2_000,
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(r.comm_graph(), r.routing_tables(), cfg, 3);
            sim.schedule_reconfig(as_fault_epoch(&epoch));
            sim.run()
        };
        let dense = run(EngineCore::DenseReference);
        let active = run(EngineCore::ActiveSet);
        assert_eq!(dense, active, "cores diverged under a fault epoch");
        assert!(dense.dropped_flits > 0);
    }

    #[test]
    fn incremental_and_full_repair_swap_identically_mid_run() {
        use irnet_core::{plan_epochs_with, RepairStrategy};
        use irnet_topology::{FaultEvent, FaultKind, FaultPlan};
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 11).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let plan = (0..topo.num_links())
            .find_map(|l| {
                let (a, b) = topo.link(l);
                let plan = FaultPlan::scripted([FaultEvent::down(500, FaultKind::Link { a, b })]);
                topo.degrade(&plan).ok().map(|_| plan)
            })
            .expect("every link is a bridge");
        let run = |strategy| {
            let epochs = plan_epochs_with(
                &topo,
                r.comm_graph(),
                r.turn_table(),
                r.routing_tables(),
                &plan,
                DownUp::new(),
                strategy,
            )
            .unwrap();
            let cfg = SimConfig {
                packet_len: 8,
                injection_rate: 0.4,
                warmup_cycles: 0,
                measure_cycles: 3_000,
                deadlock_threshold: 2_000,
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(r.comm_graph(), r.routing_tables(), cfg, 3);
            for e in &epochs {
                sim.schedule_reconfig(as_fault_epoch(&e.epoch));
            }
            sim.run()
        };
        let full = run(RepairStrategy::Full);
        let incremental = run(RepairStrategy::Incremental);
        assert_eq!(
            full, incremental,
            "strategies handed the simulator different tables"
        );
        assert_eq!(full.reconfig_epochs, 1);
    }

    #[test]
    fn switch_fault_kills_node_and_its_traffic() {
        use irnet_topology::{FaultEvent, FaultKind, FaultPlan};
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 5).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let epoch = (0..topo.num_nodes())
            .find_map(|node| {
                let plan = FaultPlan::scripted([FaultEvent::down(600, FaultKind::Switch { node })]);
                irnet_core::repair_epoch(
                    &topo,
                    r.comm_graph(),
                    r.turn_table(),
                    &plan,
                    600,
                    DownUp::new(),
                )
                .ok()
            })
            .expect("some switch fault must be repairable");
        let dead = epoch.dead_nodes[0] as usize;
        let cfg = SimConfig {
            packet_len: 8,
            injection_rate: 0.2,
            warmup_cycles: 0,
            measure_cycles: 4_000,
            deadlock_threshold: 2_000,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(r.comm_graph(), r.routing_tables(), cfg, 9);
        sim.schedule_reconfig(as_fault_epoch(&epoch));
        let stats = sim.run();
        assert!(!stats.deadlocked);
        assert!(
            stats.dropped_packets > 0,
            "traffic to the dead switch must be purged"
        );
        assert!(stats.packets_delivered > 0);
        // The dead switch neither generates nor receives after the epoch:
        // a healthy node's counters keep growing past any level the dead
        // node could reach in 600 cycles; just check it fell silent
        // relative to the network average.
        let avg = stats.node_flits_delivered.iter().sum::<u64>() / stats.num_nodes as u64;
        assert!(
            stats.node_flits_delivered[dead] < avg,
            "dead node kept receiving"
        );
    }

    #[test]
    fn epoch_after_the_horizon_changes_nothing() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 5).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let epoch = link_fault_epoch(&topo, &r, 1_000_000);
        let baseline = Simulator::new(r.comm_graph(), r.routing_tables(), quick_cfg(0.05), 1).run();
        let mut sim = Simulator::new(r.comm_graph(), r.routing_tables(), quick_cfg(0.05), 1);
        sim.schedule_reconfig(as_fault_epoch(&epoch));
        let scheduled = sim.run();
        assert_eq!(baseline, scheduled, "an unreached epoch perturbed the run");
    }

    #[test]
    fn flit_conservation_with_drops() {
        // Inject for 1000 cycles with a link failing at 500, stop
        // injection, drain: every generated packet was either delivered or
        // dropped, and no flit is left anywhere.
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 5).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let epoch = link_fault_epoch(&topo, &r, 500);
        let cfg = SimConfig {
            packet_len: 8,
            injection_rate: 0.3,
            warmup_cycles: 0,
            measure_cycles: 4_000,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(r.comm_graph(), r.routing_tables(), cfg, 12);
        sim.schedule_reconfig(as_fault_epoch(&epoch));
        for _ in 0..1_000 {
            sim.step();
        }
        sim.set_injection_rate(0.0);
        for _ in 0..20_000 {
            sim.step();
            if sim.live_packets == 0 {
                break;
            }
        }
        assert_eq!(sim.live_packets, 0, "network failed to drain after fault");
        assert_eq!(sim.buffered_flits, 0);
        let generated = sim.packets.len() as u64;
        let stats = sim.finish();
        assert!(stats.dropped_packets > 0);
        assert_eq!(stats.packets_delivered + stats.dropped_packets, generated);
    }

    #[test]
    fn flit_conservation_when_drained() {
        // With injection only in the first half and enough time to drain,
        // everything generated must be delivered.
        let topo = gen::random_irregular(gen::IrregularParams::paper(10, 4), 4).unwrap();
        let r = DownUp::new().construct(&topo).unwrap();
        let cfg = SimConfig {
            packet_len: 4,
            injection_rate: 0.02,
            warmup_cycles: 0,
            measure_cycles: 4_000,
            ..SimConfig::default()
        };
        // Run a bespoke loop: inject for 1000 cycles, then drain.
        let mut sim = Simulator::new(r.comm_graph(), r.routing_tables(), cfg, 12);
        for _ in 0..1_000 {
            sim.step();
        }
        // Stop generating and drain.
        sim.set_injection_rate(0.0);
        for _ in 0..20_000 {
            sim.step();
            if sim.live_packets == 0 {
                break;
            }
        }
        assert_eq!(sim.live_packets, 0, "network failed to drain");
        assert_eq!(sim.buffered_flits, 0);
        let generated = sim.packets.len() as u64;
        assert_eq!(sim.flits_delivered, generated * 4);
        assert_eq!(sim.packets_delivered, generated);
    }
}
