//! Phase 3 — releasing redundant per-node prohibited turns
//! (the paper's `cycle_detection` algorithm, §4.3).
//!
//! Applying the global set `PT` to every node over-constrains some of them:
//! a prohibited turn at a node is *redundant* if allowing it cannot close
//! any turn cycle in this particular communication graph. Following the
//! paper, only the turns `T(LU_CROSS → RD_TREE)` and
//! `T(RU_CROSS → RD_TREE)` are candidates for release — they are the ones
//! that let traffic flow from a cross-ascent back down the tree, i.e. they
//! push traffic toward the leaves.
//!
//! The release test is the channel-level statement of the paper's DFS:
//! releasing the candidate turn `(e1, e2)` at node `v` closes a cycle iff
//! the current channel dependency graph (with every previously released
//! turn included) contains a directed path from `e2` back to `e1`. A path
//! that would use the candidate edge itself mid-way necessarily passes
//! through `e1` first, so searching the graph *without* the candidate edge
//! is equivalent.
//!
//! Releases are processed in node-id order and, within a node, in
//! (input port, output port) order; each successful release is committed
//! before the next candidate is tested, matching the sequential pass of
//! the paper. Granularity is per channel pair, the strictly safe reading
//! of the algorithm (see DESIGN.md §4).

use irnet_topology::{ChannelId, CommGraph, Direction};
use irnet_turns::{release_redundant_turns, TurnTable};

/// A turn released by `cycle_detection`, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReleasedTurn {
    /// The node at which the turn was released.
    pub node: u32,
    /// The incoming channel (`LU_CROSS` or `RU_CROSS`).
    pub in_ch: ChannelId,
    /// The outgoing channel (`RD_TREE`).
    pub out_ch: ChannelId,
}

/// Runs the paper's `cycle_detection` release pass over `table`, mutating
/// it in place. Returns the turns that were released.
///
/// Only `T(LU_CROSS → RD_TREE)` and `T(RU_CROSS → RD_TREE)` are candidates
/// (paper §4.3). Complexity: `O(k · |E⃗|)` where `k` is the number of
/// candidate pairs — each test is one DFS over the channel dependency
/// graph, matching the paper's `O(d · |V|²)` bound. The graph is built
/// once; each committed release layers a single edge onto an incremental
/// [`irnet_turns::PathOracle`] instead of triggering a rebuild, and the
/// DFS reuses a visit-stamp buffer, so the pass allocates nothing per
/// candidate (the Phase-3 fast path for 1024+-switch fabrics).
pub fn cycle_detection(cg: &CommGraph, table: &mut TurnTable) -> Vec<ReleasedTurn> {
    let released = release_redundant_turns(cg, table, |in_ch, out_ch| {
        matches!(cg.direction(in_ch), Direction::LuCross | Direction::RuCross)
            && cg.direction(out_ch) == Direction::RdTree
    });
    released
        .into_iter()
        .map(|(in_ch, out_ch)| ReleasedTurn {
            node: cg.channels().sink(in_ch),
            in_ch,
            out_ch,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase2::turn_allowed;
    use irnet_topology::{gen, CoordinatedTree, PreorderPolicy};
    use irnet_turns::ChannelDepGraph;

    fn downup_table(topo: &irnet_topology::Topology) -> (CommGraph, TurnTable) {
        let tree = CoordinatedTree::build(topo, PreorderPolicy::M1, 0).unwrap();
        let cg = CommGraph::build(topo, &tree);
        let table = TurnTable::from_direction_rule(&cg, turn_allowed);
        (cg, table)
    }

    #[test]
    fn releases_keep_the_table_deadlock_free() {
        for seed in 0..6 {
            let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), seed).unwrap();
            let (cg, mut table) = downup_table(&topo);
            let before = table.num_prohibited_turns(&cg);
            let released = cycle_detection(&cg, &mut table);
            let after = table.num_prohibited_turns(&cg);
            assert_eq!(before - after, released.len());
            let dep = ChannelDepGraph::build(&cg, &table);
            assert!(
                dep.is_acyclic(),
                "release pass broke deadlock freedom (seed {seed})"
            );
        }
    }

    #[test]
    fn released_turns_are_up_cross_to_rd_tree_only() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(32, 8), 5).unwrap();
        let (cg, mut table) = downup_table(&topo);
        for r in cycle_detection(&cg, &mut table) {
            assert!(matches!(
                cg.direction(r.in_ch),
                Direction::LuCross | Direction::RuCross
            ));
            assert_eq!(cg.direction(r.out_ch), Direction::RdTree);
            assert_eq!(cg.channels().sink(r.in_ch), r.node);
            assert_eq!(cg.channels().start(r.out_ch), r.node);
            assert!(table.is_allowed(&cg, r.in_ch, r.out_ch));
        }
    }

    #[test]
    fn release_pass_is_idempotent() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), 2).unwrap();
        let (cg, mut table) = downup_table(&topo);
        let first = cycle_detection(&cg, &mut table);
        let second = cycle_detection(&cg, &mut table);
        assert!(
            second.is_empty(),
            "second pass released {} more turns",
            second.len()
        );
        // A maximality-flavored sanity check: re-prohibiting a released turn
        // and re-running reproduces it.
        if let Some(&r) = first.first() {
            table.prohibit(&cg, r.in_ch, r.out_ch);
            let again = cycle_detection(&cg, &mut table);
            assert_eq!(again, vec![r]);
        }
    }

    #[test]
    fn some_topologies_have_releasable_turns() {
        // Over a set of seeds, at least one network must contain redundant
        // prohibited turns — otherwise phase 3 would be vacuous.
        let mut total = 0usize;
        for seed in 0..8 {
            let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), seed).unwrap();
            let (cg, mut table) = downup_table(&topo);
            total += cycle_detection(&cg, &mut table).len();
        }
        assert!(
            total > 0,
            "phase 3 never released anything across 8 topologies"
        );
    }
}
