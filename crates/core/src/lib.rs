#![warn(missing_docs)]
//! The **DOWN/UP routing** of Sun, Yang, Chung and Huang (ICPP 2004): an
//! efficient deadlock-free tree-based routing algorithm for irregular
//! wormhole-routed networks based on the turn model.
//!
//! Construction follows the paper's three phases:
//!
//! 1. **Phase 1** — build the coordinated tree (`X` = preorder index,
//!    `Y` = BFS level) and the eight-direction communication graph
//!    (provided by `irnet-topology`).
//! 2. **Phase 2** — derive the maximal acyclic direction dependency graph
//!    `ADDG₇` from the complete direction graph by the paper's incremental
//!    pairing procedure, yielding 18 globally prohibited turns
//!    ([`phase2::PROHIBITED_TURNS`]). See [`phase2`] for the discussion of
//!    the discrepancy between the paper's construction and its printed
//!    turn list.
//! 3. **Phase 3** — release redundant per-node prohibitions of
//!    `T(LU_CROSS → RD_TREE)` and `T(RU_CROSS → RD_TREE)` wherever the
//!    release cannot close a turn cycle (`cycle_detection`), then build
//!    turn-constrained shortest-path routing tables.
//!
//! ```
//! use irnet_topology::{gen, PreorderPolicy};
//! use irnet_core::DownUp;
//!
//! let topo = gen::random_irregular(gen::IrregularParams::paper(32, 4), 1).unwrap();
//! let routing = DownUp::new().policy(PreorderPolicy::M1).construct(&topo).unwrap();
//! assert!(irnet_turns::verify_routing(routing.comm_graph(), routing.turn_table()).is_ok());
//! ```

mod builder;
pub mod incremental;
pub mod phase2;
pub mod phase3;
pub mod repair;

pub use builder::{ConstructError, DownUp, DownUpRouting, PhaseSpans};
pub use incremental::{
    plan_epochs_instrumented, plan_epochs_timeline_instrumented, plan_epochs_timeline_with,
    plan_epochs_with, EpochRepair, RepairSpans, RepairStrategy,
};
pub use repair::{
    plan_epochs, plan_epochs_timeline, repair_epoch, repair_step, ReconfigEpoch, RepairError,
};
