//! The repair path: rebuilding DOWN/UP routing on the surviving graph
//! after faults, and packaging each rebuild as a *reconfiguration epoch*.
//!
//! A fault plan partitions simulated time into epochs at its activation
//! cycles. For each epoch boundary the repair:
//!
//! 0. runs the *feasibility-first gate* (`irnet-analyze`): a one-BFS
//!    oracle that decides whether any deadlock-free connected routing can
//!    exist on the survivors at all. Hopeless degradations surface as
//!    [`RepairError::Infeasible`] with a minimized obstruction in
//!    milliseconds, before any rebuild work is spent;
//! 1. degrades the original topology by every fault activated so far
//!    (compact surviving graph + id maps, from `irnet-topology`);
//! 2. re-runs the paper's Phases 1–3 on the surviving graph — a fresh
//!    coordinated tree, the ADDG₇ prohibitions, and the `cycle_detection`
//!    release;
//! 3. *lifts* the repaired turn table back into the original channel id
//!    space (dead channels stay fully prohibited) and rebuilds masked
//!    routing tables over the original communication graph, so a running
//!    simulator can swap tables without renumbering anything;
//! 4. records which surviving channels changed tree direction — the
//!    channels whose dependency sense flips, and the reason the UPR-style
//!    old∪new union check (in `irnet-verify`) is not vacuous.

use crate::builder::{ConstructError, DownUp};
use irnet_analyze::{analyze_and_degrade_masks, AnalyzedDegrade, Obstruction};
use irnet_topology::{
    ChannelId, CommGraph, DampingPolicy, DegradedTopology, FaultError, FaultPlan, LinkId, NodeId,
    RecoveryTimeline, TimelineStep, Topology,
};
use irnet_turns::{RoutingTables, TurnTable};

/// One reconfiguration epoch: everything a live fabric needs to switch
/// from the pre-fault routing function to the repaired one. All ids are in
/// the *original* topology's channel/node space.
///
/// Since reconfiguration went bidirectional, an epoch's dead sets are the
/// elements down *at that point of the timeline* — no longer a monotone
/// superset of the previous epoch's. The `revived_*` fields carry the
/// up-direction delta so the simulator can re-enable previously-DEAD
/// resources at the barrier.
#[derive(Debug, Clone)]
pub struct ReconfigEpoch {
    /// Activation cycle of the transition this epoch applies.
    pub cycle: u32,
    /// Switches down after this epoch (original ids).
    pub dead_nodes: Vec<NodeId>,
    /// Links down after this epoch (original ids).
    pub dead_links: Vec<LinkId>,
    /// Both directed channels of every dead link.
    pub dead_channels: Vec<ChannelId>,
    /// Channels re-admitted by this epoch (previously dead, now alive).
    pub revived_channels: Vec<ChannelId>,
    /// Switches re-admitted by this epoch.
    pub revived_nodes: Vec<NodeId>,
    /// The turn table in force before this epoch.
    pub old_table: TurnTable,
    /// The repaired turn table, lifted to the original channel space;
    /// every pair touching a dead channel is prohibited.
    pub new_table: TurnTable,
    /// Surviving channels whose coordinated-tree direction changed under
    /// the repaired tree.
    pub flipped_channels: Vec<ChannelId>,
    /// Masked shortest-path routing tables over the original communication
    /// graph: dead channels appear in no candidate mask (injection
    /// included) and dead nodes are skipped as destinations.
    pub tables: RoutingTables,
}

impl ReconfigEpoch {
    /// True when this epoch only removes elements (a fault transition).
    pub fn is_down_only(&self) -> bool {
        self.revived_channels.is_empty() && self.revived_nodes.is_empty()
    }
}

/// Why an epoch could not be repaired.
#[derive(Debug)]
pub enum RepairError {
    /// The feasibility oracle proved that no deadlock-free connected
    /// routing exists on the survivors — rebuilding cannot help. Carries
    /// the minimized obstruction (reported before any rebuild is run).
    Infeasible(Obstruction),
    /// The plan names unknown links or switches.
    Fault(FaultError),
    /// DOWN/UP construction failed on the surviving graph.
    Construct(ConstructError),
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::Infeasible(o) => {
                write!(f, "degraded network is unroutable: {o}")
            }
            RepairError::Fault(e) => write!(f, "{e}"),
            RepairError::Construct(e) => write!(f, "repair construction failed: {e}"),
        }
    }
}

impl std::error::Error for RepairError {}

impl From<FaultError> for RepairError {
    fn from(e: FaultError) -> Self {
        RepairError::Fault(e)
    }
}

impl From<ConstructError> for RepairError {
    fn from(e: ConstructError) -> Self {
        RepairError::Construct(e)
    }
}

/// Repairs the routing for every step of `plan`'s transition timeline,
/// chaining the epochs (epoch *k*'s old table is epoch *k−1*'s new table).
///
/// For a schema-v1 (down-only) plan the timeline steps are exactly the
/// plan's activation cycles with cumulative fault masks, so this behaves
/// as the monotone planner always did — except that duplicate faults no
/// longer produce no-op epochs. Recovery-aware plans get up transitions
/// interleaved, each epoch's live set computed from the *original*
/// topology minus the elements down at that step.
///
/// `cg` and `base_table` are the pre-fault communication graph and turn
/// table of `topo`; `builder` configures the Phases-1–3 rebuild. Flap
/// damping is off here (every physical transition is admitted); use
/// [`RecoveryTimeline::compute`] with a policy plus
/// [`plan_epochs_timeline`] to damp.
pub fn plan_epochs(
    topo: &Topology,
    cg: &CommGraph,
    base_table: &TurnTable,
    plan: &FaultPlan,
    builder: DownUp,
) -> Result<Vec<ReconfigEpoch>, RepairError> {
    let timeline = RecoveryTimeline::compute(topo, plan, DampingPolicy::none())?;
    plan_epochs_timeline(topo, cg, base_table, &timeline, builder)
}

/// Repairs the routing for every step of an already-expanded (and possibly
/// damped) transition timeline. See [`plan_epochs`].
pub fn plan_epochs_timeline(
    topo: &Topology,
    cg: &CommGraph,
    base_table: &TurnTable,
    timeline: &RecoveryTimeline,
    builder: DownUp,
) -> Result<Vec<ReconfigEpoch>, RepairError> {
    let mut epochs: Vec<ReconfigEpoch> = Vec::new();
    for step in &timeline.steps {
        // Epoch k's old table is epoch k−1's new table — borrowed from the
        // epoch just pushed, so the chain never clones a turn table.
        let prev = epochs.last().map_or(base_table, |e| &e.new_table);
        let epoch = repair_step(topo, cg, prev, step, builder)?;
        epochs.push(epoch);
    }
    Ok(epochs)
}

/// Repairs one epoch from a monotone cumulative plan: applies `cumulative`
/// (every fault active at `cycle`, recovery fields ignored) to `topo`,
/// rebuilds DOWN/UP on the survivors, and lifts the result back into the
/// original id space.
pub fn repair_epoch(
    topo: &Topology,
    cg: &CommGraph,
    old_table: &TurnTable,
    cumulative: &FaultPlan,
    cycle: u32,
    builder: DownUp,
) -> Result<ReconfigEpoch, RepairError> {
    let (node_dead, link_dead) = topo.fault_masks(cumulative)?;
    repair_masks(
        topo,
        cg,
        old_table,
        &node_dead,
        &link_dead,
        cycle,
        &[],
        &[],
        builder,
    )
}

/// Repairs one timeline step: same gate/rebuild/lift pipeline in both
/// directions, with the step's revived elements recorded on the epoch.
pub fn repair_step(
    topo: &Topology,
    cg: &CommGraph,
    old_table: &TurnTable,
    step: &TimelineStep,
    builder: DownUp,
) -> Result<ReconfigEpoch, RepairError> {
    let revived_channels: Vec<ChannelId> = step
        .revived_links
        .iter()
        .flat_map(|&l| [2 * l, 2 * l + 1])
        .collect();
    repair_masks(
        topo,
        cg,
        old_table,
        &step.node_down,
        &step.link_down,
        step.cycle,
        &revived_channels,
        &step.revived_nodes,
        builder,
    )
}

/// The shared repair pipeline over explicit down masks: feasibility-first
/// gate, Phases 1–3 on the compacted survivors, lift back into the
/// original channel space, masked routing tables. Direction-agnostic: an
/// up transition is just a step whose masks shrank, and the recovery
/// elements ride along into the epoch record.
#[allow(clippy::too_many_arguments)]
fn repair_masks(
    topo: &Topology,
    cg: &CommGraph,
    old_table: &TurnTable,
    node_down: &[bool],
    link_down: &[bool],
    cycle: u32,
    revived_channels: &[ChannelId],
    revived_nodes: &[NodeId],
    builder: DownUp,
) -> Result<ReconfigEpoch, RepairError> {
    // Feasibility-first gate: prove the survivors routable before paying
    // for the rebuild. The gate and the degradation share the masks, so
    // the live set is resolved exactly once.
    let deg = match analyze_and_degrade_masks(topo, node_down, link_down)? {
        AnalyzedDegrade::Feasible { degraded, .. } => *degraded,
        AnalyzedDegrade::Infeasible(obstruction) => {
            return Err(RepairError::Infeasible(obstruction));
        }
    };
    // Phases 1–3 only: the compact routing tables a full `construct` would
    // also build are never consumed here — the masked tables below are
    // rebuilt in the original channel space instead.
    let (_, new_cg, compact_table, _) = builder.construct_phases(&deg.topology)?;
    let lifted = lift_repair(cg, &deg, &new_cg, &compact_table);

    let tables = RoutingTables::build_masked(
        cg,
        &lifted.new_table,
        &lifted.dead_channel,
        &lifted.alive_node,
    )
    .map_err(|e| RepairError::Construct(ConstructError::Routing(e)))?;

    Ok(ReconfigEpoch {
        cycle,
        dead_nodes: deg.dead_nodes,
        dead_channels: deg
            .dead_links
            .iter()
            .flat_map(|&l| [2 * l, 2 * l + 1])
            .collect(),
        dead_links: deg.dead_links,
        revived_channels: revived_channels.to_vec(),
        revived_nodes: revived_nodes.to_vec(),
        old_table: old_table.clone(),
        new_table: lifted.new_table,
        flipped_channels: lifted.flipped_channels,
        tables,
    })
}

/// A compact repaired turn table lifted back into the original channel
/// space, plus the alive/dead masks the lift derived on the way.
pub(crate) struct Lifted {
    /// Per original channel: does it map to no surviving compact channel?
    pub dead_channel: Vec<bool>,
    /// Per original node: does it survive the degradation?
    pub alive_node: Vec<bool>,
    /// The repaired turn table in the original channel space; every pair
    /// touching a dead channel is prohibited.
    pub new_table: TurnTable,
    /// Surviving channels whose coordinated-tree direction changed.
    pub flipped_channels: Vec<ChannelId>,
}

/// Lifts `compact_table` (built on the degraded topology's communication
/// graph `new_cg`) back into the original channel space of `cg`.
///
/// Original channel `2l + d` maps to compact channel `2·link_map[l] + d`:
/// the compact renumbering is monotone, so every surviving link keeps its
/// `a < b` endpoint orientation and the direction bit is preserved.
pub(crate) fn lift_repair(
    cg: &CommGraph,
    deg: &DegradedTopology,
    new_cg: &CommGraph,
    compact_table: &TurnTable,
) -> Lifted {
    let nch = cg.num_channels();
    let map_ch = |c: ChannelId| -> Option<ChannelId> {
        deg.link_map[(c / 2) as usize].map(|nl| 2 * nl + (c & 1))
    };
    let dead_channel: Vec<bool> = (0..nch).map(|c| map_ch(c).is_none()).collect();
    let alive_node: Vec<bool> = deg.node_map.iter().map(Option::is_some).collect();

    let new_table = TurnTable::from_channel_rule(cg, |ic, oc| match (map_ch(ic), map_ch(oc)) {
        (Some(ni), Some(no)) => compact_table.is_allowed(new_cg, ni, no),
        _ => false,
    });

    let flipped_channels: Vec<ChannelId> = (0..nch)
        .filter(|&c| map_ch(c).is_some_and(|nc| cg.direction(c) != new_cg.direction(nc)))
        .collect();

    Lifted {
        dead_channel,
        alive_node,
        new_table,
        flipped_channels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_topology::{gen, FaultEvent, FaultKind};
    use irnet_turns::ChannelDepGraph;

    fn base(seed: u64) -> (Topology, CommGraph, TurnTable) {
        let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), seed).unwrap();
        let routing = DownUp::new().construct(&topo).unwrap();
        let (_, cg, table, _) = routing.into_parts();
        (topo, cg, table)
    }

    fn link_fault(cycle: u32, a: NodeId, b: NodeId) -> FaultEvent {
        FaultEvent::down(cycle, FaultKind::Link { a, b })
    }

    /// A link whose removal keeps the graph connected (not a bridge).
    fn non_bridge(topo: &Topology) -> (NodeId, NodeId) {
        for &(a, b) in topo.links() {
            let plan = FaultPlan::scripted([link_fault(0, a, b)]);
            if topo.degrade(&plan).is_ok() {
                return (a, b);
            }
        }
        panic!("every link is a bridge");
    }

    #[test]
    fn repaired_epoch_is_lifted_consistently() {
        let (topo, cg, table) = base(3);
        let (a, b) = non_bridge(&topo);
        let plan = FaultPlan::scripted([link_fault(500, a, b)]);
        let epochs = plan_epochs(&topo, &cg, &table, &plan, DownUp::new()).unwrap();
        assert_eq!(epochs.len(), 1);
        let ep = &epochs[0];
        assert_eq!(ep.cycle, 500);
        let l = topo.link_between(a, b).unwrap();
        assert_eq!(ep.dead_links, vec![l]);
        assert_eq!(ep.dead_channels, vec![2 * l, 2 * l + 1]);
        assert!(ep.dead_nodes.is_empty());
        assert_eq!(ep.old_table, table);

        // The lifted table prohibits every turn touching a dead channel.
        let ch = cg.channels();
        for c in [2 * l, 2 * l + 1] {
            let v = ch.sink(c);
            for &out in ch.outputs(v) {
                assert!(!ep.new_table.is_allowed(&cg, c, out));
            }
            let s = ch.start(c);
            for &inp in ch.inputs(s) {
                assert!(!ep.new_table.is_allowed(&cg, inp, c));
            }
        }
        // The lifted table is deadlock-free in the original space.
        assert!(ChannelDepGraph::build(&cg, &ep.new_table).is_acyclic());
        // Flipped channels are alive and really flipped in tree direction.
        for &c in &ep.flipped_channels {
            assert!(!ep.dead_channels.contains(&c));
        }
        // Masked tables route every alive pair without dead ports.
        for s in 0..topo.num_nodes() {
            for t in 0..topo.num_nodes() {
                if s != t {
                    let path = ep.tables.route(&cg, s, t);
                    assert!(path.iter().all(|&c| c / 2 != l));
                }
            }
        }
    }

    #[test]
    fn epochs_chain_old_to_new() {
        let (topo, cg, table) = base(5);
        // Two link faults at different cycles, both non-bridges applied
        // cumulatively: search a pair that stays connected.
        let mut picked = Vec::new();
        for &(a, b) in topo.links() {
            let mut events: Vec<FaultEvent> = picked
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| link_fault(100 * (i as u32 + 1), x, y))
                .collect();
            events.push(link_fault(100 * (picked.len() as u32 + 1), a, b));
            if topo.degrade(&FaultPlan::scripted(events)).is_ok() {
                picked.push((a, b));
                if picked.len() == 2 {
                    break;
                }
            }
        }
        assert_eq!(picked.len(), 2, "could not find two safe faults");
        let plan = FaultPlan::scripted([
            link_fault(100, picked[0].0, picked[0].1),
            link_fault(200, picked[1].0, picked[1].1),
        ]);
        let epochs = plan_epochs(&topo, &cg, &table, &plan, DownUp::new()).unwrap();
        assert_eq!(epochs.len(), 2);
        assert_eq!(epochs[0].old_table, table);
        assert_eq!(epochs[1].old_table, epochs[0].new_table);
        assert_eq!(epochs[1].dead_links.len(), 2);
        assert!(epochs[0].dead_links.len() == 1);
    }

    #[test]
    fn switch_fault_kills_node_as_destination() {
        let (topo, cg, table) = base(7);
        // Find a switch whose removal keeps the rest connected.
        let node = (0..topo.num_nodes())
            .find(|&v| {
                let plan =
                    FaultPlan::scripted([FaultEvent::down(0, FaultKind::Switch { node: v })]);
                topo.degrade(&plan).is_ok()
            })
            .expect("some switch is removable");
        let plan = FaultPlan::scripted([FaultEvent::down(50, FaultKind::Switch { node })]);
        let epochs = plan_epochs(&topo, &cg, &table, &plan, DownUp::new()).unwrap();
        let ep = &epochs[0];
        assert_eq!(ep.dead_nodes, vec![node]);
        assert_eq!(ep.dead_links.len() as u32, topo.degree(node));
        // No masks toward the dead destination.
        use irnet_turns::INJECTION_SLOT;
        for v in 0..topo.num_nodes() {
            if v != node {
                assert_eq!(ep.tables.candidates(node, v, INJECTION_SLOT), 0);
            }
        }
    }

    #[test]
    fn partition_is_rejected_by_the_feasibility_gate() {
        // A path topology: every link is a bridge, so losing one makes the
        // degradation provably unroutable. The gate catches it with a
        // minimized obstruction before any rebuild is attempted.
        let topo = Topology::new(4, 4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let routing = DownUp::new().construct(&topo).unwrap();
        let (_, cg, table, _) = routing.into_parts();
        let plan = FaultPlan::scripted([link_fault(10, 1, 2)]);
        let err = plan_epochs(&topo, &cg, &table, &plan, DownUp::new()).unwrap_err();
        match err {
            RepairError::Infeasible(Obstruction::Partitioned {
                component,
                witness_pair,
                ..
            }) => {
                assert_eq!(component, vec![0, 1]);
                assert_eq!(witness_pair, (0, 2));
            }
            other => panic!("expected the gate's obstruction, got: {other}"),
        }
    }

    #[test]
    fn unknown_faults_still_surface_as_fault_errors() {
        let (topo, cg, table) = base(2);
        let plan = FaultPlan::scripted([link_fault(10, 0, topo.num_nodes() - 1)]);
        if topo.link_between(0, topo.num_nodes() - 1).is_some() {
            return; // the random graph happens to have this link; skip
        }
        let err = plan_epochs(&topo, &cg, &table, &plan, DownUp::new()).unwrap_err();
        assert!(matches!(
            err,
            RepairError::Fault(FaultError::UnknownLink { .. })
        ));
    }

    #[test]
    fn empty_plan_yields_no_epochs() {
        let (topo, cg, table) = base(1);
        let plan = FaultPlan::scripted([]);
        let epochs = plan_epochs(&topo, &cg, &table, &plan, DownUp::new()).unwrap();
        assert!(epochs.is_empty());
    }

    #[test]
    fn recovery_epoch_restores_the_pristine_tables() {
        let (topo, cg, table) = base(3);
        let (a, b) = non_bridge(&topo);
        let plan =
            FaultPlan::scripted([FaultEvent::recovering(500, FaultKind::Link { a, b }, 1_500)]);
        let builder = DownUp::new();
        let epochs = plan_epochs(&topo, &cg, &table, &plan, builder).unwrap();
        assert_eq!(epochs.len(), 2);
        let l = topo.link_between(a, b).unwrap();
        let down = &epochs[0];
        assert!(down.is_down_only());
        assert_eq!(down.dead_links, vec![l]);
        let up = &epochs[1];
        assert_eq!(up.cycle, 1_500);
        assert!(!up.is_down_only());
        assert_eq!(up.revived_channels, vec![2 * l, 2 * l + 1]);
        assert!(up.dead_links.is_empty() && up.dead_nodes.is_empty());
        assert_eq!(up.old_table, down.new_table);
        // Recovering the only fault restores the pristine turn table and
        // routing tables bit-identically.
        assert_eq!(up.new_table, table);
        let pristine = builder.construct(&topo).unwrap();
        assert_eq!(&up.tables, pristine.routing_tables());
    }
}
