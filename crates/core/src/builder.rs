use crate::phase2;
use crate::phase3::{self, ReleasedTurn};
use irnet_telemetry::Telemetry;
use irnet_topology::{
    CommGraph, CoordinatedTree, PreorderPolicy, RootPolicy, Topology, TopologyError,
};
use irnet_turns::{RoutingError, RoutingTables, TurnTable};

/// Errors from [`DownUp::construct`].
#[derive(Debug)]
pub enum ConstructError {
    /// Coordinated-tree construction failed.
    Topology(TopologyError),
    /// The turn restrictions disconnected some pair — this would indicate a
    /// bug in the algorithm and is surfaced rather than hidden.
    Routing(RoutingError),
}

impl std::fmt::Display for ConstructError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstructError::Topology(e) => write!(f, "topology error: {e}"),
            ConstructError::Routing(e) => write!(f, "routing error: {e}"),
        }
    }
}

impl std::error::Error for ConstructError {}

impl From<TopologyError> for ConstructError {
    fn from(e: TopologyError) -> Self {
        ConstructError::Topology(e)
    }
}

impl From<RoutingError> for ConstructError {
    fn from(e: RoutingError) -> Self {
        ConstructError::Routing(e)
    }
}

/// Builder for the DOWN/UP routing. Defaults match the paper's best
/// configuration: `M1` preorder policy, Phase 3 release enabled.
#[derive(Debug, Clone, Copy)]
pub struct DownUp {
    policy: PreorderPolicy,
    root: RootPolicy,
    seed: u64,
    release: bool,
}

impl Default for DownUp {
    fn default() -> Self {
        Self::new()
    }
}

impl DownUp {
    /// A builder with the paper's defaults.
    pub fn new() -> DownUp {
        DownUp {
            policy: PreorderPolicy::M1,
            root: RootPolicy::Smallest,
            seed: 0,
            release: true,
        }
    }

    /// Selects the preorder policy (`M1`/`M2`/`M3`) for the coordinated
    /// tree.
    pub fn policy(mut self, policy: PreorderPolicy) -> DownUp {
        self.policy = policy;
        self
    }

    /// Selects how the spanning-tree root is chosen (paper: smallest id).
    pub fn root(mut self, root: RootPolicy) -> DownUp {
        self.root = root;
        self
    }

    /// Seed for the `M2` (random preorder) policy.
    pub fn seed(mut self, seed: u64) -> DownUp {
        self.seed = seed;
        self
    }

    /// Enables or disables the Phase-3 `cycle_detection` release pass
    /// (enabled by default; disabling it is the A1 ablation of DESIGN.md).
    pub fn release(mut self, release: bool) -> DownUp {
        self.release = release;
        self
    }

    /// Runs the three construction phases on `topo`.
    pub fn construct(self, topo: &Topology) -> Result<DownUpRouting, ConstructError> {
        self.construct_timed(topo).map(|(routing, _)| routing)
    }

    /// Builds just the Phase-1 coordinated tree of `topo` under this
    /// builder's root/preorder configuration — the baseline incremental
    /// repair classifies the first epoch's faults against.
    pub(crate) fn build_tree(self, topo: &Topology) -> Result<CoordinatedTree, TopologyError> {
        let root = self.root.pick(topo);
        CoordinatedTree::build_rooted(topo, root, self.policy, self.seed)
    }

    /// Runs Phases 1–3 only — tree, communication graph, and turn table —
    /// *without* the shortest-legal-path routing-table build, which
    /// dominates construction cost at scale. Incremental repair
    /// (`crates/core/src/incremental.rs`) uses this to recompute the
    /// prohibition set cheaply and then patch the previous epoch's routing
    /// tables in place instead of rebuilding them.
    pub fn construct_phases(
        self,
        topo: &Topology,
    ) -> Result<(CoordinatedTree, CommGraph, TurnTable, Vec<ReleasedTurn>), ConstructError> {
        let tree = self.build_tree(topo)?;
        let cg = CommGraph::build(topo, &tree);
        let mut table = TurnTable::from_direction_rule(&cg, phase2::turn_allowed);
        let released = if self.release {
            phase3::cycle_detection(&cg, &mut table)
        } else {
            Vec::new()
        };
        Ok((tree, cg, table, released))
    }

    /// Like [`DownUp::construct`], but also returns per-phase wall-clock
    /// spans — the observability hook behind the `BENCH_sim.json`
    /// `construction` array and the CLI's `--progress` output.
    pub fn construct_timed(
        self,
        topo: &Topology,
    ) -> Result<(DownUpRouting, PhaseSpans), ConstructError> {
        self.construct_instrumented(topo, &Telemetry::disabled())
    }

    /// [`DownUp::construct`] with telemetry attached: the same run also
    /// lands in `tel`'s span tree as `construction` and its
    /// `phase1`/`phase2`/`phase3`/`tables` children.
    pub fn construct_with(
        self,
        topo: &Topology,
        tel: &Telemetry,
    ) -> Result<DownUpRouting, ConstructError> {
        self.construct_instrumented(topo, tel).map(|(r, _)| r)
    }

    /// The fully instrumented constructor behind [`DownUp::construct`],
    /// [`DownUp::construct_timed`], and [`DownUp::construct_with`]. Each
    /// phase is measured exactly once; the measurement feeds both the
    /// legacy [`PhaseSpans`] view and `tel`'s span tree (one
    /// measurement, two views — they can never disagree).
    pub fn construct_instrumented(
        self,
        topo: &Topology,
        tel: &Telemetry,
    ) -> Result<(DownUpRouting, PhaseSpans), ConstructError> {
        // Phase 1: coordinated tree + communication graph.
        let start = std::time::Instant::now();
        let root = self.root.pick(topo);
        let tree = CoordinatedTree::build_rooted(topo, root, self.policy, self.seed)?;
        let cg = CommGraph::build(topo, &tree);
        let phase1_seconds = start.elapsed().as_secs_f64();
        // Phase 2: apply the 18 globally prohibited turns.
        let start = std::time::Instant::now();
        let mut table = TurnTable::from_direction_rule(&cg, phase2::turn_allowed);
        let phase2_seconds = start.elapsed().as_secs_f64();
        // Phase 3: release redundant per-node prohibitions.
        let start = std::time::Instant::now();
        let released = if self.release {
            phase3::cycle_detection(&cg, &mut table)
        } else {
            Vec::new()
        };
        let phase3_seconds = start.elapsed().as_secs_f64();
        // Shortest legal paths; also proves connectivity (Theorem 1).
        let start = std::time::Instant::now();
        let tables = RoutingTables::build(&cg, &table)?;
        let tables_seconds = start.elapsed().as_secs_f64();
        let spans = PhaseSpans {
            phase1_seconds,
            phase2_seconds,
            phase3_seconds,
            tables_seconds,
        };
        tel.record_span("construction", spans.total_seconds());
        tel.record_span("construction/phase1", phase1_seconds);
        tel.record_span("construction/phase2", phase2_seconds);
        tel.record_span("construction/phase3", phase3_seconds);
        tel.record_span("construction/tables", tables_seconds);
        Ok((
            DownUpRouting {
                tree,
                cg,
                table,
                tables,
                released,
            },
            spans,
        ))
    }
}

/// Wall-clock spans of the construction pipeline, one per stage: the
/// coordinated tree + communication graph (Phase 1), the global turn
/// prohibition (Phase 2), the release pass (Phase 3), and the shortest
/// legal-path routing-table build that follows them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpans {
    /// Coordinated tree + communication graph construction.
    pub phase1_seconds: f64,
    /// Turn-prohibition table construction.
    pub phase2_seconds: f64,
    /// `cycle_detection` release pass (zero when release is disabled).
    pub phase3_seconds: f64,
    /// Shortest-legal-path routing-table build.
    pub tables_seconds: f64,
}

impl PhaseSpans {
    /// Total construction time across all spans.
    pub fn total_seconds(&self) -> f64 {
        self.phase1_seconds + self.phase2_seconds + self.phase3_seconds + self.tables_seconds
    }
}

/// A fully constructed DOWN/UP routing for one topology: the coordinated
/// tree, the communication graph, the per-node turn table, and the
/// shortest-path routing tables the simulator consumes.
#[derive(Debug, Clone)]
pub struct DownUpRouting {
    tree: CoordinatedTree,
    cg: CommGraph,
    table: TurnTable,
    tables: RoutingTables,
    released: Vec<ReleasedTurn>,
}

impl DownUpRouting {
    /// The coordinated tree (Phase 1).
    pub fn tree(&self) -> &CoordinatedTree {
        &self.tree
    }

    /// The communication graph (Phase 1).
    pub fn comm_graph(&self) -> &CommGraph {
        &self.cg
    }

    /// The per-node turn permissions after Phases 2–3.
    pub fn turn_table(&self) -> &TurnTable {
        &self.table
    }

    /// The shortest-legal-path routing tables.
    pub fn routing_tables(&self) -> &RoutingTables {
        &self.tables
    }

    /// The turns Phase 3 released.
    pub fn released_turns(&self) -> &[ReleasedTurn] {
        &self.released
    }

    /// Decomposes into owned parts `(tree, comm graph, turn table,
    /// routing tables)` — used by harness code that stores the artifacts
    /// uniformly across algorithms.
    pub fn into_parts(self) -> (CoordinatedTree, CommGraph, TurnTable, RoutingTables) {
        (self.tree, self.cg, self.table, self.tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_topology::gen;
    use irnet_turns::verify_routing;

    #[test]
    fn construct_verifies_on_random_networks() {
        for seed in 0..4 {
            for ports in [4u32, 8] {
                let topo =
                    gen::random_irregular(gen::IrregularParams::paper(32, ports), seed).unwrap();
                for policy in PreorderPolicy::ALL {
                    let routing = DownUp::new()
                        .policy(policy)
                        .seed(seed)
                        .construct(&topo)
                        .unwrap();
                    let report = verify_routing(routing.comm_graph(), routing.turn_table());
                    assert!(
                        report.is_ok(),
                        "seed {seed} ports {ports} policy {policy}: {:?} {:?}",
                        report.cycle,
                        report.disconnected
                    );
                }
            }
        }
    }

    #[test]
    fn release_never_lengthens_routes() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(32, 4), 7).unwrap();
        let with = DownUp::new().construct(&topo).unwrap();
        let without = DownUp::new().release(false).construct(&topo).unwrap();
        let cg = with.comm_graph();
        assert!(
            with.routing_tables().avg_route_len(cg)
                <= without.routing_tables().avg_route_len(without.comm_graph()) + 1e-12
        );
    }

    #[test]
    fn routing_is_reproducible() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), 3).unwrap();
        let a = DownUp::new()
            .policy(PreorderPolicy::M2)
            .seed(11)
            .construct(&topo)
            .unwrap();
        let b = DownUp::new()
            .policy(PreorderPolicy::M2)
            .seed(11)
            .construct(&topo)
            .unwrap();
        assert_eq!(a.turn_table(), b.turn_table());
        assert_eq!(a.released_turns(), b.released_turns());
    }
}
