//! Incremental epoch repair: patch the previous epoch's routing state
//! instead of rebuilding it from scratch.
//!
//! The full repair path ([`crate::repair::repair_epoch`]) re-runs Phases
//! 1–3 on the survivors and then rebuilds the masked shortest-path tables
//! over the *original* communication graph. At scale the table rebuild
//! dominates by two orders of magnitude (see `BENCH_sim.json`'s
//! `construction` array: at 4096 switches Phases 1–3 cost ~0.4 s while the
//! table build costs ~17 s), yet a single fault typically perturbs only a
//! tiny region of the routing function.
//!
//! [`plan_epochs_with`] therefore splits each epoch into four measured
//! stages (surfaced as [`RepairSpans`]):
//!
//! 1. **classify** — feed the timeline step's down masks through the
//!    feasibility gate + degradation (shared masks, see `irnet-analyze`)
//!    and classify each *newly* dead element against the previous epoch's
//!    coordinated tree: tree link vs cross link, leaf switch vs internal
//!    switch. Cross-link and leaf faults leave the M1/M3 BFS preorder
//!    intact, which is why their table deltas are small.
//! 2. **phases** — re-run the paper's Phases 1–3 on the compact survivors
//!    (no table build) and lift the repaired turn table back into the
//!    original channel space. Both strategies run this verbatim, so the
//!    incremental path produces *bit-identical* turn tables to the full
//!    one by construction.
//! 3. **patch** — measure the turn-table delta. When it is small, clone
//!    the previous epoch's tables and apply the exact dirty-region patch
//!    ([`RoutingTables::patch_masked`]): invalidate costs reachable from
//!    removed dependency edges, re-settle them with a frontier Dijkstra,
//!    apply decreases from added edges, and recompute exactly the mask
//!    rows whose cost neighborhood or turn rows changed. When the delta is
//!    large (tree-link faults under M2, root changes, …) fall back to the
//!    full masked rebuild — the patch would touch everything anyway.
//! 4. **recertify** — re-certify the old∪new transition union by checking
//!    only the *added* dependency edges against a path oracle over the old
//!    (acyclic) dependency graph (`irnet-verify`'s `union_acyclic_delta`),
//!    instead of re-running the full Dally–Seitz certification.
//!
//! Equivalence argument: stage 2 recomputes the prohibition set exactly as
//! the full path does, so old∪new certification and the simulator-visible
//! turn tables cannot differ between strategies. Stage 3's patch is an
//! exact delta algorithm over the same shortest-path recurrence as
//! `build_masked` — `tests/incremental.rs` and the unit tests in
//! `irnet-turns` assert table equality against a fresh rebuild, and the
//! fault-injection golden pins stay bit-identical under either strategy.

use crate::builder::{ConstructError, DownUp};
use crate::repair::{lift_repair, ReconfigEpoch, RepairError};
use irnet_analyze::{analyze_and_degrade_masks, AnalyzedDegrade};
use irnet_telemetry::{Progress, Telemetry};
use irnet_topology::{
    ChannelId, CommGraph, CoordinatedTree, DampingPolicy, DegradedTopology, FaultPlan, LinkId,
    NodeId, RecoveryTimeline, Topology,
};
use irnet_turns::{RoutingTables, TurnTable};
use irnet_verify::union_acyclic_delta;
use std::time::Instant;

/// How [`plan_epochs_with`] repairs each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStrategy {
    /// Rebuild the masked routing tables from scratch every epoch — the
    /// reference path, semantically identical to [`crate::repair_epoch`].
    Full,
    /// Patch the previous epoch's tables in place when the measured
    /// turn-table delta is small, falling back to a full rebuild when it
    /// is not, and re-certify only the changed portion of the dependency
    /// union.
    Incremental,
}

impl RepairStrategy {
    /// Parses `"full"` / `"incremental"` (as accepted by the CLI).
    pub fn parse(s: &str) -> Option<RepairStrategy> {
        match s {
            "full" => Some(RepairStrategy::Full),
            "incremental" => Some(RepairStrategy::Incremental),
            _ => None,
        }
    }

    /// The CLI spelling of this strategy.
    pub fn name(self) -> &'static str {
        match self {
            RepairStrategy::Full => "full",
            RepairStrategy::Incremental => "incremental",
        }
    }
}

/// Wall-clock spans and touched-region counters of one epoch repair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairSpans {
    /// Fault-plan resolution, feasibility gate, degradation, and
    /// classification of the newly dead elements.
    pub classify_seconds: f64,
    /// Phases 1–3 on the survivors plus the lift back into the original
    /// channel space.
    pub phases_seconds: f64,
    /// Routing-table production: the in-place patch, or the full masked
    /// rebuild when the delta was too large (or the strategy is
    /// [`RepairStrategy::Full`]).
    pub patch_seconds: f64,
    /// Delta re-certification of the old∪new dependency union (zero under
    /// [`RepairStrategy::Full`], which leaves certification to the
    /// caller).
    pub recertify_seconds: f64,
    /// Switches whose routing-table rows were rewritten.
    pub touched_switches: u32,
    /// `(destination, node, input)` mask rows rewritten.
    pub touched_rows: u64,
    /// Newly dead links that were tree links of the previous epoch's
    /// coordinated tree.
    pub tree_link_faults: u32,
    /// Newly dead links that were cross links of the previous tree.
    pub cross_link_faults: u32,
    /// Newly dead switches that were leaves of the previous tree.
    pub leaf_switch_faults: u32,
    /// Newly dead switches that were internal nodes of the previous tree.
    pub internal_switch_faults: u32,
    /// Whether the tables were patched in place (`false` means the full
    /// masked rebuild ran — always under [`RepairStrategy::Full`], or as
    /// the large-delta fallback under [`RepairStrategy::Incremental`]).
    pub patched_in_place: bool,
    /// Outcome of the delta re-certification: `None` when it did not run
    /// ([`RepairStrategy::Full`]), `Some(true)` when the old∪new union
    /// was certified acyclic, `Some(false)` when the union carries a
    /// cycle — the same verdict the exhaustive
    /// `irnet_verify::certify_transition` union certificate reports, at
    /// delta cost.
    pub recertified: Option<bool>,
}

impl RepairSpans {
    /// Total repair time across all stages.
    pub fn total_seconds(&self) -> f64 {
        self.classify_seconds + self.phases_seconds + self.patch_seconds + self.recertify_seconds
    }
}

/// One repaired epoch plus how long each stage of its repair took.
#[derive(Debug, Clone)]
pub struct EpochRepair {
    /// The reconfiguration epoch, identical in content to what
    /// [`crate::plan_epochs`] produces.
    pub epoch: ReconfigEpoch,
    /// Stage timings and touched-region counters.
    pub spans: RepairSpans,
}

/// Patch when fewer than one row in [`PATCH_DENSITY`] changed; beyond
/// that the full rebuild is competitive and the patch bookkeeping is not
/// worth it. Tree-link faults, `M2` preorder divergence, root changes,
/// and similar whole-tree reshuffles flip the direction of most channels
/// and exceed this automatically, falling back to the rebuild. (Even a
/// minimal single-link fault rewrites the rows of both dead channels and
/// of every input row at the two endpoints, so the threshold must stay
/// permissive enough for small fabrics — a localized fault touches a
/// bounded row count, a reshuffle touches a constant *fraction*.)
const PATCH_DENSITY: usize = 4;

/// Repairs the routing for every timeline step of `plan` under
/// `strategy`, chaining the epochs exactly like [`crate::plan_epochs`]
/// (epoch *k*'s old table — and, for the incremental patch, its tables —
/// are epoch *k−1*'s). Flap damping is off; use
/// [`plan_epochs_timeline_with`] with a damped timeline to apply a policy.
///
/// `base_tables` are the pre-fault routing tables matching `base_table`;
/// the incremental path patches a clone of them for the first epoch.
///
/// Both strategies produce identical [`ReconfigEpoch`]s: the same lifted
/// turn tables by construction, and the same routing tables because the
/// patch is exact (asserted by `tests/incremental.rs`).
pub fn plan_epochs_with(
    topo: &Topology,
    cg: &CommGraph,
    base_table: &TurnTable,
    base_tables: &RoutingTables,
    plan: &FaultPlan,
    builder: DownUp,
    strategy: RepairStrategy,
) -> Result<Vec<EpochRepair>, RepairError> {
    let timeline =
        RecoveryTimeline::compute(topo, plan, DampingPolicy::none()).map_err(RepairError::Fault)?;
    plan_epochs_timeline_with(
        topo,
        cg,
        base_table,
        base_tables,
        &timeline,
        builder,
        strategy,
    )
}

/// [`plan_epochs_with`] with telemetry attached (see
/// [`plan_epochs_timeline_instrumented`]) — the span-tree path `perf.rs`
/// reads repair timings from.
#[allow(clippy::too_many_arguments)]
pub fn plan_epochs_instrumented(
    topo: &Topology,
    cg: &CommGraph,
    base_table: &TurnTable,
    base_tables: &RoutingTables,
    plan: &FaultPlan,
    builder: DownUp,
    strategy: RepairStrategy,
    tel: &Telemetry,
) -> Result<Vec<EpochRepair>, RepairError> {
    let timeline =
        RecoveryTimeline::compute(topo, plan, DampingPolicy::none()).map_err(RepairError::Fault)?;
    plan_epochs_timeline_instrumented(
        topo,
        cg,
        base_table,
        base_tables,
        &timeline,
        builder,
        strategy,
        tel,
        None,
    )
}

/// Repairs the routing for every step of an already-expanded (and possibly
/// flap-damped) transition timeline under `strategy`. This is the
/// bidirectional workhorse behind [`plan_epochs_with`] and `irnet soak`:
/// down steps classify/patch exactly as before, while up steps (any step
/// reviving an element) always take the full masked rebuild — a
/// re-admitted link lowers distances network-wide, so the delta is dense
/// and the patch bookkeeping cannot win — and still get the O(delta)
/// union re-certification.
pub fn plan_epochs_timeline_with(
    topo: &Topology,
    cg: &CommGraph,
    base_table: &TurnTable,
    base_tables: &RoutingTables,
    timeline: &RecoveryTimeline,
    builder: DownUp,
    strategy: RepairStrategy,
) -> Result<Vec<EpochRepair>, RepairError> {
    plan_epochs_timeline_instrumented(
        topo,
        cg,
        base_table,
        base_tables,
        timeline,
        builder,
        strategy,
        &Telemetry::disabled(),
        None,
    )
}

/// [`plan_epochs_timeline_with`] with telemetry attached: every epoch's
/// stage timings also land in `tel`'s span tree (`repair` and its
/// `classify`/`phases`/`patch`/`recertify` children — the same single
/// measurements that fill [`RepairSpans`]), the touched-region and fault
/// classification counters accumulate in the registry, and `progress`, if
/// given, is ticked once per repaired epoch.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub fn plan_epochs_timeline_instrumented(
    topo: &Topology,
    cg: &CommGraph,
    base_table: &TurnTable,
    base_tables: &RoutingTables,
    timeline: &RecoveryTimeline,
    builder: DownUp,
    strategy: RepairStrategy,
    tel: &Telemetry,
    progress: Option<&Progress>,
) -> Result<Vec<EpochRepair>, RepairError> {
    let mut epochs: Vec<EpochRepair> = Vec::new();
    // Classification baseline for the first epoch: the pre-fault tree.
    let mut prev_tree: CoordinatedTree = builder.build_tree(topo).map_err(ConstructError::from)?;
    let mut prev_deg: Option<DegradedTopology> = None;

    for step in &timeline.steps {
        let cycle = step.cycle;

        // Stage 1: classify. The step's masks feed both the feasibility
        // gate and the degradation, and its delta lists are the newly
        // dead/revived elements — no diffing against the previous epoch
        // needed.
        let t0 = Instant::now();
        let deg = match analyze_and_degrade_masks(topo, &step.node_down, &step.link_down)? {
            AnalyzedDegrade::Feasible { degraded, .. } => *degraded,
            AnalyzedDegrade::Infeasible(obstruction) => {
                return Err(RepairError::Infeasible(obstruction));
            }
        };
        let newly_dead_nodes: &[NodeId] = &step.failed_nodes;
        let newly_dead_links: &[LinkId] = &step.failed_links;
        let newly_dead_channels: Vec<ChannelId> = newly_dead_links
            .iter()
            .flat_map(|&l| [2 * l, 2 * l + 1])
            .collect();
        let revived_channels: Vec<ChannelId> = step
            .revived_links
            .iter()
            .flat_map(|&l| [2 * l, 2 * l + 1])
            .collect();

        // Classify against the previous epoch's compact tree. Ids map
        // through the previous degradation (identity for the first epoch).
        let map_node = |v: NodeId| -> Option<NodeId> {
            prev_deg
                .as_ref()
                .map_or(Some(v), |p| p.node_map[v as usize])
        };
        let map_link = |l: LinkId| -> Option<LinkId> {
            prev_deg
                .as_ref()
                .map_or(Some(l), |p| p.link_map[l as usize])
        };
        let mut tree_link_faults = 0u32;
        let mut cross_link_faults = 0u32;
        let mut leaf_switch_faults = 0u32;
        let mut internal_switch_faults = 0u32;
        for &v in newly_dead_nodes {
            if let Some(cv) = map_node(v) {
                if prev_tree.is_leaf(cv) {
                    leaf_switch_faults += 1;
                } else {
                    internal_switch_faults += 1;
                }
            }
        }
        for &l in newly_dead_links {
            let (a, b) = topo.links()[l as usize];
            // Links lost to a switch fault are accounted to the switch.
            if newly_dead_nodes.binary_search(&a).is_ok()
                || newly_dead_nodes.binary_search(&b).is_ok()
            {
                continue;
            }
            if let Some(cl) = map_link(l) {
                if prev_tree.is_tree_link(cl) {
                    tree_link_faults += 1;
                } else {
                    cross_link_faults += 1;
                }
            }
        }
        let classify_seconds = t0.elapsed().as_secs_f64();

        // Stage 2: Phases 1–3 on the survivors + lift. Shared verbatim by
        // both strategies, so the repaired turn tables are identical.
        let t1 = Instant::now();
        let (new_tree, new_cg, compact_table, _released) =
            builder.construct_phases(&deg.topology)?;
        let lifted = lift_repair(cg, &deg, &new_cg, &compact_table);
        let phases_seconds = t1.elapsed().as_secs_f64();

        let old_table: &TurnTable = epochs.last().map_or(base_table, |e| &e.epoch.new_table);

        // Stage 3: produce the routing tables — patch or rebuild. Up
        // steps always rebuild: `patch_masked`'s invalidation is seeded
        // from newly-*dead* resources, and a revived link improves costs
        // network-wide anyway, so the delta is dense by nature.
        let t2 = Instant::now();
        let mut patched_in_place = false;
        let (tables, touched_switches, touched_rows) = if strategy == RepairStrategy::Incremental
            && step.is_down_only()
            && patch_is_worthwhile(cg, old_table, &lifted.new_table)
        {
            let prev_tables: &RoutingTables =
                epochs.last().map_or(base_tables, |e| &e.epoch.tables);
            let mut tables = prev_tables.clone();
            let stats = tables
                .patch_masked(
                    cg,
                    old_table,
                    &lifted.new_table,
                    &lifted.dead_channel,
                    &lifted.alive_node,
                    &newly_dead_channels,
                    newly_dead_nodes,
                )
                .map_err(|e| RepairError::Construct(ConstructError::Routing(e)))?;
            patched_in_place = true;
            (tables, stats.touched_switches, stats.touched_rows)
        } else {
            let tables = RoutingTables::build_masked(
                cg,
                &lifted.new_table,
                &lifted.dead_channel,
                &lifted.alive_node,
            )
            .map_err(|e| RepairError::Construct(ConstructError::Routing(e)))?;
            let alive = lifted.alive_node.iter().filter(|&&a| a).count();
            let rows = cg.channels().num_channels() as u64 + u64::from(cg.num_nodes());
            ((tables), alive as u32, alive as u64 * rows)
        };
        let patch_seconds = t2.elapsed().as_secs_f64();

        // Stage 4: delta re-certification of the transition union. A
        // cyclic union is reported, not fatal — it matches the verdict
        // the exhaustive `certify_transition` union certificate carries,
        // and callers decide what to do with it (the CLI reports both).
        let t3 = Instant::now();
        let recertified = if strategy == RepairStrategy::Incremental {
            Some(
                union_acyclic_delta(cg, old_table, &lifted.new_table, &lifted.dead_channel).is_ok(),
            )
        } else {
            None
        };
        let recertify_seconds = t3.elapsed().as_secs_f64();

        let epoch = ReconfigEpoch {
            cycle,
            dead_nodes: deg.dead_nodes.clone(),
            dead_channels: deg
                .dead_links
                .iter()
                .flat_map(|&l| [2 * l, 2 * l + 1])
                .collect(),
            dead_links: deg.dead_links.clone(),
            revived_channels,
            revived_nodes: step.revived_nodes.clone(),
            old_table: old_table.clone(),
            new_table: lifted.new_table,
            flipped_channels: lifted.flipped_channels,
            tables,
        };
        let spans = RepairSpans {
            classify_seconds,
            phases_seconds,
            patch_seconds,
            recertify_seconds,
            touched_switches,
            touched_rows,
            tree_link_faults,
            cross_link_faults,
            leaf_switch_faults,
            internal_switch_faults,
            patched_in_place,
            recertified,
        };
        record_repair_telemetry(tel, &spans, step.is_down_only());
        epochs.push(EpochRepair { epoch, spans });
        if let Some(p) = progress {
            p.tick(epochs.len());
        }
        prev_tree = new_tree;
        prev_deg = Some(deg);
    }
    Ok(epochs)
}

/// Feeds one epoch's [`RepairSpans`] into the registry: the `repair` span
/// subtree (the same four measurements, so the two views cannot
/// disagree) plus the touched-region / classification counters.
fn record_repair_telemetry(tel: &Telemetry, spans: &RepairSpans, down_only: bool) {
    if !tel.is_enabled() {
        return;
    }
    tel.record_span("repair", spans.total_seconds());
    tel.record_span("repair/classify", spans.classify_seconds);
    tel.record_span("repair/phases", spans.phases_seconds);
    tel.record_span("repair/patch", spans.patch_seconds);
    tel.record_span("repair/recertify", spans.recertify_seconds);
    tel.counter("repair/epochs").inc();
    tel.counter(if down_only {
        "repair/epochs_down"
    } else {
        "repair/epochs_up"
    })
    .inc();
    tel.counter("repair/touched_switches")
        .add(u64::from(spans.touched_switches));
    tel.counter("repair/touched_rows").add(spans.touched_rows);
    tel.counter("repair/tree_link_faults")
        .add(u64::from(spans.tree_link_faults));
    tel.counter("repair/cross_link_faults")
        .add(u64::from(spans.cross_link_faults));
    tel.counter("repair/leaf_switch_faults")
        .add(u64::from(spans.leaf_switch_faults));
    tel.counter("repair/internal_switch_faults")
        .add(u64::from(spans.internal_switch_faults));
    tel.counter(if spans.patched_in_place {
        "repair/patched_in_place"
    } else {
        "repair/full_rebuilds"
    })
    .inc();
    if let Some(ok) = spans.recertified {
        tel.counter(if ok {
            "repair/recertified_ok"
        } else {
            "repair/recertified_cyclic"
        })
        .inc();
    }
}

/// Measures the turn-table delta and decides patch vs rebuild: patch only
/// when fewer than one mask row in [`PATCH_DENSITY`] changed. The measured
/// delta — not the fault classification — drives the decision, so
/// whole-tree reshuffles (tree-link faults, `M2` divergence, a root
/// change) fall back automatically however they arise.
fn patch_is_worthwhile(cg: &CommGraph, old: &TurnTable, new: &TurnTable) -> bool {
    let ch = cg.channels();
    let mut changed = 0usize;
    let mut total = 0usize;
    for v in 0..cg.num_nodes() {
        let inputs = ch.inputs(v).len();
        total += inputs;
        for q in 0..inputs {
            #[allow(clippy::cast_possible_truncation)]
            if old.mask(v, q as u8) != new.mask(v, q as u8) {
                changed += 1;
            }
        }
    }
    changed * PATCH_DENSITY < total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan_epochs;
    use irnet_topology::{gen, FaultEvent, FaultKind};
    use irnet_verify::certify_transition;

    fn base(seed: u64) -> (Topology, CommGraph, TurnTable, RoutingTables) {
        let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), seed).unwrap();
        let routing = DownUp::new().construct(&topo).unwrap();
        let (_, cg, table, tables) = routing.into_parts();
        (topo, cg, table, tables)
    }

    fn link_fault(cycle: u32, a: NodeId, b: NodeId) -> FaultEvent {
        FaultEvent::down(cycle, FaultKind::Link { a, b })
    }

    /// Up to `want` cumulative non-partitioning link faults at distinct
    /// cycles.
    fn safe_link_plan(topo: &Topology, want: usize) -> FaultPlan {
        let mut picked: Vec<(NodeId, NodeId)> = Vec::new();
        for &(a, b) in topo.links() {
            let mut events: Vec<FaultEvent> = picked
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| link_fault(100 * (i as u32 + 1), x, y))
                .collect();
            events.push(link_fault(100 * (picked.len() as u32 + 1), a, b));
            if topo.degrade(&FaultPlan::scripted(events)).is_ok() {
                picked.push((a, b));
                if picked.len() == want {
                    break;
                }
            }
        }
        FaultPlan::scripted(
            picked
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| link_fault(100 * (i as u32 + 1), x, y))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn both_strategies_match_the_reference_path() {
        for seed in [3, 5, 11] {
            let (topo, cg, table, tables) = base(seed);
            let plan = safe_link_plan(&topo, 3);
            let reference = plan_epochs(&topo, &cg, &table, &plan, DownUp::new()).unwrap();
            for strategy in [RepairStrategy::Full, RepairStrategy::Incremental] {
                let got =
                    plan_epochs_with(&topo, &cg, &table, &tables, &plan, DownUp::new(), strategy)
                        .unwrap();
                assert_eq!(got.len(), reference.len());
                for (g, r) in got.iter().zip(&reference) {
                    assert_eq!(g.epoch.cycle, r.cycle);
                    assert_eq!(g.epoch.dead_links, r.dead_links);
                    assert_eq!(g.epoch.dead_nodes, r.dead_nodes);
                    assert_eq!(g.epoch.old_table, r.old_table);
                    assert_eq!(g.epoch.new_table, r.new_table);
                    assert_eq!(g.epoch.flipped_channels, r.flipped_channels);
                    assert_eq!(g.epoch.tables, r.tables, "seed {seed} {strategy:?}");
                    if strategy == RepairStrategy::Incremental {
                        assert!(g.spans.recertified.is_some());
                    } else {
                        assert_eq!(g.spans.recertified, None);
                        assert!(!g.spans.patched_in_place);
                    }
                }
            }
        }
    }

    #[test]
    fn delta_recertifier_agrees_with_the_exhaustive_certificates() {
        for seed in [2, 7, 13] {
            let (topo, cg, table, tables) = base(seed);
            let plan = safe_link_plan(&topo, 2);
            let epochs = plan_epochs_with(
                &topo,
                &cg,
                &table,
                &tables,
                &plan,
                DownUp::new(),
                RepairStrategy::Incremental,
            )
            .unwrap();
            for ep in &epochs {
                let dead: Vec<bool> = {
                    let mut d = vec![false; cg.num_channels() as usize];
                    for &c in &ep.epoch.dead_channels {
                        d[c as usize] = true;
                    }
                    d
                };
                let certs =
                    certify_transition(&cg, &ep.epoch.old_table, &ep.epoch.new_table, &dead);
                // The repaired steady state is always deadlock-free…
                assert!(certs.degraded.is_deadlock_free());
                // …and the O(delta) union verdict matches the exhaustive one.
                assert_eq!(
                    ep.spans.recertified,
                    Some(certs.union.is_deadlock_free()),
                    "seed {seed} cycle {}",
                    ep.epoch.cycle
                );
            }
        }
    }

    #[test]
    fn classification_sees_tree_and_cross_links() {
        let (topo, cg, table, tables) = base(9);
        let tree = DownUp::new().build_tree(&topo).unwrap();
        // One cross link and one tree link, failed at distinct cycles.
        let mut cross = None;
        let mut treelink = None;
        for (l, &(a, b)) in topo.links().iter().enumerate() {
            let plan = FaultPlan::scripted([link_fault(0, a, b)]);
            if topo.degrade(&plan).is_err() {
                continue;
            }
            if tree.is_tree_link(l as LinkId) {
                treelink.get_or_insert((a, b));
            } else {
                cross.get_or_insert((a, b));
            }
        }
        let (ca, cb) = cross.expect("no removable cross link");
        let epochs = plan_epochs_with(
            &topo,
            &cg,
            &table,
            &tables,
            &FaultPlan::scripted([link_fault(100, ca, cb)]),
            DownUp::new(),
            RepairStrategy::Incremental,
        )
        .unwrap();
        assert_eq!(epochs[0].spans.cross_link_faults, 1);
        assert_eq!(epochs[0].spans.tree_link_faults, 0);
        // A cross-link fault leaves the M1 preorder intact: small delta,
        // patched in place.
        assert!(epochs[0].spans.patched_in_place);
        assert!(epochs[0].spans.touched_switches <= topo.num_nodes());
        if let Some((ta, tb)) = treelink {
            let epochs = plan_epochs_with(
                &topo,
                &cg,
                &table,
                &tables,
                &FaultPlan::scripted([link_fault(100, ta, tb)]),
                DownUp::new(),
                RepairStrategy::Incremental,
            )
            .unwrap();
            assert_eq!(epochs[0].spans.tree_link_faults, 1);
            assert_eq!(epochs[0].spans.cross_link_faults, 0);
        }
    }

    #[test]
    fn switch_faults_classify_against_the_previous_tree() {
        let (topo, cg, table, tables) = base(2);
        let tree = DownUp::new().build_tree(&topo).unwrap();
        let leaf = tree
            .leaves()
            .into_iter()
            .find(|&v| {
                let plan =
                    FaultPlan::scripted([FaultEvent::down(0, FaultKind::Switch { node: v })]);
                topo.degrade(&plan).is_ok()
            })
            .expect("no removable leaf");
        let epochs = plan_epochs_with(
            &topo,
            &cg,
            &table,
            &tables,
            &FaultPlan::scripted([FaultEvent::down(40, FaultKind::Switch { node: leaf })]),
            DownUp::new(),
            RepairStrategy::Incremental,
        )
        .unwrap();
        assert_eq!(epochs[0].spans.leaf_switch_faults, 1);
        assert_eq!(epochs[0].spans.internal_switch_faults, 0);
        // The leaf's incident links are accounted to the switch, not as
        // independent link faults.
        assert_eq!(epochs[0].spans.tree_link_faults, 0);
        assert_eq!(epochs[0].spans.cross_link_faults, 0);
    }

    #[test]
    fn recovery_steps_match_under_both_strategies_and_restore_base() {
        let (topo, cg, table, tables) = base(5);
        // A safe link that fails, recovers, and flaps once more.
        let down_only = safe_link_plan(&topo, 1);
        let (a, b) = match down_only.events()[0].kind {
            FaultKind::Link { a, b } => (a, b),
            FaultKind::Switch { .. } => unreachable!("safe_link_plan only picks links"),
        };
        let plan =
            FaultPlan::scripted([
                FaultEvent::recovering(100, FaultKind::Link { a, b }, 400).with_flap(600, 1)
            ]);
        let reference = plan_epochs(&topo, &cg, &table, &plan, DownUp::new()).unwrap();
        assert_eq!(reference.len(), 4, "down/up/down/up");
        for strategy in [RepairStrategy::Full, RepairStrategy::Incremental] {
            let got = plan_epochs_with(&topo, &cg, &table, &tables, &plan, DownUp::new(), strategy)
                .unwrap();
            assert_eq!(got.len(), reference.len());
            for (g, r) in got.iter().zip(&reference) {
                assert_eq!(g.epoch.cycle, r.cycle);
                assert_eq!(g.epoch.dead_links, r.dead_links);
                assert_eq!(g.epoch.revived_channels, r.revived_channels);
                assert_eq!(g.epoch.new_table, r.new_table);
                assert_eq!(g.epoch.tables, r.tables, "{strategy:?}");
            }
            // Up steps never patch in place; every step still recertifies
            // under the incremental strategy.
            for g in &got {
                if !g.epoch.is_down_only() {
                    assert!(!g.spans.patched_in_place);
                }
                if strategy == RepairStrategy::Incremental {
                    assert!(g.spans.recertified.is_some());
                }
            }
            // After the final recovery the tables are the pristine ones.
            let last = &got.last().unwrap().epoch;
            assert!(last.dead_links.is_empty());
            assert_eq!(last.new_table, table);
            assert_eq!(last.tables, tables);
        }
    }

    #[test]
    fn infeasible_epochs_error_before_any_patch() {
        let topo = Topology::new(4, 4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let routing = DownUp::new().construct(&topo).unwrap();
        let (_, cg, table, tables) = routing.into_parts();
        let plan = FaultPlan::scripted([link_fault(10, 1, 2)]);
        let err = plan_epochs_with(
            &topo,
            &cg,
            &table,
            &tables,
            &plan,
            DownUp::new(),
            RepairStrategy::Incremental,
        )
        .unwrap_err();
        assert!(matches!(err, RepairError::Infeasible(_)));
    }
}
