//! Phase 2 — deriving the maximal acyclic direction dependency graph
//! (`ADDG₇`) from the complete direction graph, following §4.2 of the paper
//! step by step.
//!
//! # The paper's two disagreeing statements of `PT`
//!
//! The paper gives the 18 prohibited turns twice:
//!
//! * The **construction** (§4.2): Step 3 removes the four turns *from* the
//!   up-cross directions *to* the horizontal directions
//!   (`{LU_CROSS, RU_CROSS} → {L_CROSS, R_CROSS}`). This is required for the
//!   rest of the paper to make sense — Step 4's cycles `C3`/`C4` explicitly
//!   use `T(L_CROSS → RU_CROSS)` and `T(R_CROSS → LU_CROSS)` as edges that
//!   still *exist* in `ADDG₆`.
//! * The **flat list** (§4.3) instead contains the four reversed turns
//!   `{L_CROSS, R_CROSS} → {LU_CROSS, RU_CROSS}`.
//!
//! The printed variant is not deadlock-free: with up→horizontal allowed, the
//! turn cycle `RU_CROSS → L_CROSS → LD_CROSS → RU_CROSS` is fully allowed
//! and realizable in a five-switch communication graph (see
//! `printed_pt_list_admits_a_turn_cycle` below). The construction variant is
//! provably safe: no turn may enter `LU_TREE`, the up-cross directions can
//! only be followed by up-cross directions (so any cross-ascent is
//! terminal), and the remaining down/horizontal directions are Y-monotone.
//! This crate therefore uses the construction-derived set,
//! [`PROHIBITED_TURNS`], and exposes the printed one as
//! [`PROHIBITED_TURNS_AS_PRINTED`] for documentation and testing.

use irnet_topology::Direction;
use irnet_turns::{DirGraph, Movement};

use Direction::*;

/// The 18 prohibited turns of the DOWN/UP routing, as derived by the §4.2
/// construction (see the module docs). `PT = T(complete) − T(ADDG₇)`.
pub const PROHIBITED_TURNS: [(Direction, Direction); 18] = [
    // Step 1 — break the opposite-direction pairs (Figure 3).
    (LuCross, RdCross), // ADDG1: keep RD_CROSS → LU_CROSS
    (RuCross, LdCross), // ADDG2: keep LD_CROSS → RU_CROSS
    (LCross, RCross),   // ADDG3: keep R_CROSS → L_CROSS
    (RdTree, LuTree),   // ADDG4: keep LU_TREE → RD_TREE
    // Step 2 — no "up before down" among cross directions (Figure 4).
    (RuCross, RdCross),
    (LuCross, LdCross),
    // Step 3 — no leaving an ascent sideways (Figure 5; Region 1 → ADDG3).
    (LuCross, LCross),
    (LuCross, RCross),
    (RuCross, LCross),
    (RuCross, RCross),
    // Step 4 — break C3/C4 and protect the root (Figure 6).
    (LuCross, RdTree),
    (RuCross, RdTree),
    (RdCross, LuTree),
    (LdCross, LuTree),
    (RuCross, LuTree),
    (LuCross, LuTree),
    (LCross, LuTree),
    (RCross, LuTree),
];

/// The 18 turns exactly as printed in §4.3 of the paper. **Not
/// deadlock-free** — kept for documentation and for the regression test
/// demonstrating the admissible turn cycle.
pub const PROHIBITED_TURNS_AS_PRINTED: [(Direction, Direction); 18] = [
    (RdTree, LuTree),
    (RdCross, LuTree),
    (LCross, LuTree),
    (RCross, LuTree),
    (LuCross, LuTree),
    (LdCross, LuTree),
    (RuCross, LuTree),
    (RuCross, LdCross),
    (RuCross, RdCross),
    (LuCross, LdCross),
    (LuCross, RdCross),
    (LuCross, RdTree),
    (RuCross, RdTree),
    (LCross, RCross),
    (RCross, RuCross),
    (RCross, LuCross),
    (LCross, RuCross),
    (LCross, LuCross),
];

/// X/Y movement of each of the eight directions, indexed by
/// [`Direction::index`]. Used by the realizability predicate.
pub fn movements() -> [Movement; Direction::COUNT] {
    let mv = |d: Direction| -> Movement {
        let dx = if d.goes_left() { -1 } else { 1 };
        let dy = if d.goes_up() {
            -1
        } else if d.goes_down() {
            1
        } else {
            0
        };
        Movement::new(dx, dy)
    };
    let mut out = [Movement::new(1, 0); Direction::COUNT];
    for d in Direction::ALL {
        out[d.index()] = mv(d);
    }
    out
}

/// Whether the turn `(from, to)` is allowed under [`PROHIBITED_TURNS`].
/// Same-direction transitions are always allowed (they are not turns).
pub fn turn_allowed(from: Direction, to: Direction) -> bool {
    from == to || !PROHIBITED_TURNS.contains(&(from, to))
}

/// Executes the paper's Step 1–4 construction, returning every
/// intermediate ADDG with its paper label: after Step 1 (the four pair
/// ADDGs of Figure 3, combined), `ADDG₅` (Figure 4(d)), `ADDG₆`
/// (Figure 5(d)) and `ADDG₇` (Figure 6(f)).
pub fn derivation_steps() -> Vec<(&'static str, DirGraph)> {
    let mut steps = Vec::new();
    let g = derive_with(|label, snapshot| steps.push((label, snapshot)));
    debug_assert_eq!(
        steps.last().map(|(_, g)| g.num_edges()),
        Some(g.num_edges())
    );
    steps
}

/// Executes the paper's Step 1–4 construction and returns `ADDG₇`.
///
/// Each step removes exactly the edges §4.2 removes, with debug assertions
/// that the intermediate graph stays free of realizable cycles. A unit test
/// checks the final edge set equals the complete graph minus
/// [`PROHIBITED_TURNS`] and is *maximal* (Definition 11).
pub fn derive_addg7() -> DirGraph {
    derive_with(|_, _| {})
}

fn derive_with(mut snapshot: impl FnMut(&'static str, DirGraph)) -> DirGraph {
    let moves = movements();
    let idx = |d: Direction| d.index();
    let mut g = DirGraph::empty(Direction::COUNT);

    // -- Step 1: the four opposite-direction pairs.
    // ADDG1 on {LU_CROSS, RD_CROSS}: drop LU→RD (up before down).
    g.add_edge(idx(RdCross), idx(LuCross));
    // ADDG2 on {LD_CROSS, RU_CROSS}: drop RU→LD.
    g.add_edge(idx(LdCross), idx(RuCross));
    // ADDG3 on {L_CROSS, R_CROSS}: drop L→R (the paper's arbitrary pick).
    g.add_edge(idx(RCross), idx(LCross));
    // ADDG4 on {LU_TREE, RD_TREE}: drop RD→LU (protect the root).
    g.add_edge(idx(LuTree), idx(RdTree));
    debug_assert!(g.is_safe(&moves), "step 1 left a realizable cycle");
    snapshot("Step 1: ADDG1-ADDG4 (Figure 3)", g.clone());

    // -- Step 2: combine ADDG1 with ADDG2 into ADDG5. All eight edges
    // between the pairs are added except the two "up before down" ones.
    for &a in &[LuCross, RdCross] {
        for &b in &[LdCross, RuCross] {
            g.add_edge(idx(a), idx(b));
            g.add_edge(idx(b), idx(a));
        }
    }
    g.remove_edge(idx(RuCross), idx(RdCross));
    g.remove_edge(idx(LuCross), idx(LdCross));
    debug_assert!(g.is_safe(&moves), "ADDG5 has a realizable cycle");
    snapshot("Step 2: ADDG5 (Figure 4d)", g.clone());

    // -- Step 3: combine ADDG3 with ADDG5 into ADDG6. All sixteen edges
    // between {L,R} and the four cross directions are added, then the four
    // edges from Region 1 (the up-cross directions) to ADDG3 are removed so
    // an ascent cannot leave sideways.
    for &h in &[LCross, RCross] {
        for &c in &[LuCross, LdCross, RuCross, RdCross] {
            g.add_edge(idx(h), idx(c));
            g.add_edge(idx(c), idx(h));
        }
    }
    g.remove_edge(idx(LuCross), idx(LCross));
    g.remove_edge(idx(LuCross), idx(RCross));
    g.remove_edge(idx(RuCross), idx(LCross));
    g.remove_edge(idx(RuCross), idx(RCross));
    debug_assert!(g.is_safe(&moves), "ADDG6 has a realizable cycle");
    snapshot("Step 3: ADDG6 (Figure 5d)", g.clone());

    // -- Step 4: combine ADDG4 with ADDG6 into ADDG7.
    let addg6_nodes = [LuCross, LdCross, RuCross, RdCross, LCross, RCross];
    // RD_TREE <-> ADDG6 edges, minus the C3/C4 breakers.
    for &c in &addg6_nodes {
        g.add_edge(idx(RdTree), idx(c));
        g.add_edge(idx(c), idx(RdTree));
    }
    g.remove_edge(idx(LuCross), idx(RdTree));
    g.remove_edge(idx(RuCross), idx(RdTree));
    // LU_TREE edges: everything out of LU_TREE, nothing into it.
    for &c in &addg6_nodes {
        g.add_edge(idx(LuTree), idx(c));
    }
    debug_assert!(g.is_safe(&moves), "ADDG7 has a realizable cycle");
    snapshot("Step 4: ADDG7 (Figure 6f)", g.clone());
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_topology::{CommGraph, CoordinatedTree, PreorderPolicy, Topology};
    use irnet_turns::{ChannelDepGraph, TurnTable};

    #[test]
    fn construction_matches_the_constant() {
        let addg7 = derive_addg7();
        let complete = DirGraph::complete(Direction::COUNT);
        let mut removed: Vec<(Direction, Direction)> = complete
            .edge_difference(&addg7)
            .into_iter()
            .map(|(a, b)| (Direction::from_index(a), Direction::from_index(b)))
            .collect();
        let mut expected = PROHIBITED_TURNS.to_vec();
        removed.sort_by_key(|&(a, b)| (a.index(), b.index()));
        expected.sort_by_key(|&(a, b)| (a.index(), b.index()));
        assert_eq!(removed, expected);
        assert_eq!(removed.len(), 18);
    }

    #[test]
    fn addg7_is_a_maximal_addg() {
        // Definition 11: safe, and adding any missing turn creates a
        // realizable cycle.
        let addg7 = derive_addg7();
        assert!(addg7.is_maximal_safe(&movements()));
        assert_eq!(addg7.num_edges(), 8 * 7 - 18);
    }

    #[test]
    fn derivation_steps_match_the_figures() {
        let steps = derivation_steps();
        assert_eq!(steps.len(), 4);
        // Edge counts of the paper's figures: 4 pair edges after Step 1;
        // ADDG5 adds 6 cross-pair edges; ADDG6 adds 12 of the 16
        // horizontal<->cross edges + the existing ones; ADDG7 ends at
        // 56 - 18 = 38.
        let counts: Vec<usize> = steps.iter().map(|(_, g)| g.num_edges()).collect();
        assert_eq!(counts, vec![4, 10, 22, 38]);
        let moves = movements();
        for (label, g) in &steps {
            assert!(g.is_safe(&moves), "{label} is not safe");
        }
        // Each step only ever adds direction pairs relative to its
        // predecessor's node set; the edge sets grow monotonically except
        // for the documented removals, so later steps contain every edge
        // kept earlier.
        for w in steps.windows(2) {
            let (_, ref a) = w[0];
            let (_, ref b) = w[1];
            for (x, y) in a.edges() {
                assert!(b.has_edge(x, y), "edge {x}->{y} lost between steps");
            }
        }
        assert_eq!(steps[3].1, derive_addg7());
    }

    #[test]
    fn printed_list_differs_in_exactly_four_turns() {
        let a: std::collections::HashSet<_> = PROHIBITED_TURNS.iter().collect();
        let b: std::collections::HashSet<_> = PROHIBITED_TURNS_AS_PRINTED.iter().collect();
        assert_eq!(a.len(), 18);
        assert_eq!(b.len(), 18);
        assert_eq!(a.difference(&b).count(), 4);
        let ours_only: Vec<_> = a.difference(&b).collect();
        for &&(from, _) in &ours_only {
            assert!(matches!(from, LuCross | RuCross));
        }
    }

    /// The five-switch counterexample from DESIGN.md: under the §4.3
    /// printed list the turn cycle
    /// `RU_CROSS → L_CROSS → LD_CROSS → RU_CROSS` is fully allowed.
    fn counterexample_cg() -> CommGraph {
        // Root 0 with children 1, 2, 3; node 4 is the child of 1 and has
        // cross links to 2 and 3; 2-3 is a same-level cross link.
        let topo = Topology::new(
            5,
            4,
            [(0, 1), (0, 2), (0, 3), (1, 4), (2, 3), (2, 4), (3, 4)],
        )
        .unwrap();
        let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        // Preorder: 0, 1, 4, 2, 3 -> X = [0, 1, 3, 4, 2].
        assert_eq!(tree.x(4), 2);
        assert_eq!(tree.x(2), 3);
        assert_eq!(tree.x(3), 4);
        CommGraph::build(&topo, &tree)
    }

    #[test]
    fn printed_pt_list_admits_a_turn_cycle() {
        let cg = counterexample_cg();
        let printed = TurnTable::from_direction_rule(&cg, |a, b| {
            !PROHIBITED_TURNS_AS_PRINTED.contains(&(a, b))
        });
        let dep = ChannelDepGraph::build(&cg, &printed);
        let cycle = dep
            .find_cycle()
            .expect("the printed PT list must admit a turn cycle");
        // No cycle can ever pass through LU_TREE (all its in-turns are
        // prohibited in both variants).
        for &c in &cycle {
            assert_ne!(cg.direction(c), Direction::LuTree);
        }
    }

    #[test]
    fn construction_pt_is_safe_on_the_counterexample() {
        let cg = counterexample_cg();
        let table = TurnTable::from_direction_rule(&cg, turn_allowed);
        let dep = ChannelDepGraph::build(&cg, &table);
        assert!(dep.is_acyclic());
    }

    #[test]
    fn no_turn_enters_lu_tree_and_ascents_are_terminal() {
        // The structural properties behind the safety proof.
        for d in Direction::ALL {
            if d != LuTree {
                assert!(
                    !turn_allowed(d, LuTree),
                    "{d} -> LU_TREE must be prohibited"
                );
            }
        }
        for up in [LuCross, RuCross] {
            for to in Direction::ALL {
                if to != up {
                    let ok = turn_allowed(up, to);
                    let to_is_up_cross = matches!(to, LuCross | RuCross);
                    assert_eq!(
                        ok, to_is_up_cross,
                        "from {up} only up-cross successors may be allowed (checked {to})"
                    );
                }
            }
        }
    }

    #[test]
    fn lca_turnaround_is_allowed() {
        // Theorem 1's connectivity argument requires LU_TREE -> RD_TREE.
        assert!(turn_allowed(LuTree, RdTree));
        assert!(!turn_allowed(RdTree, LuTree));
    }

    #[test]
    fn movements_are_consistent_with_direction_predicates() {
        let m = movements();
        for d in Direction::ALL {
            assert_eq!(m[d.index()].dx < 0, d.goes_left());
            assert_eq!(m[d.index()].dy < 0, d.goes_up());
            assert_eq!(m[d.index()].dy > 0, d.goes_down());
        }
    }
}
